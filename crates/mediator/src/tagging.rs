//! The tagging phase (paper §5.1): turning the cached output relations into
//! the final XML document.
//!
//! "In the tagging phase, the tagging plan is applied to these relations to
//! produce the final output document", entirely within the middleware. The
//! instance tables are indexed by `(occurrence, parent rowid)` — the
//! relational encoding of the root-to-node path — and the tree is written
//! top-down; internal computation states never appear (they are simply not
//! descended into), and PCDATA resolves through copy chains into instance
//! columns.

use crate::error::MediatorError;
use crate::exec::{branch_tag, occ_tag, RelStore};
use crate::graph::{Binding, Occ, RelKey, ScalarBind, TaskGraph};
use aig_core::copyelim::{resolve_scalar, ResolvedScalar};
use aig_core::spec::{Aig, ElemIdx, Prod};
use aig_relstore::{Relation, Value};
use aig_xml::{NodeId, NodeKind, XmlTree};
use std::collections::{HashMap, HashSet};

/// Builds the document from the executed relations.
pub fn tag_document(
    aig: &Aig,
    graph: &TaskGraph,
    store: &RelStore,
) -> Result<XmlTree, MediatorError> {
    let tagger = Tagger {
        aig,
        graph,
        store,
        children_index: build_children_index(aig, graph, store)?,
    };
    let root_info = aig.elem_info(aig.root);
    let mut tree = XmlTree::new(root_info.tag().to_string());
    let root_node = tree.root();
    let root_binding = tagger.binding(&Occ::mat(aig.root))?;
    let base = store.get(&RelKey::Instances(aig.root))?;
    if base.len() != 1 {
        return Err(MediatorError::Internal(format!(
            "root instance table has {} rows",
            base.len()
        )));
    }
    tagger.tag_children(&mut tree, root_node, root_binding, 0)?;
    Ok(tree)
}

/// Index: (element, `__occ` tag, parent rowid) → ordered child row
/// positions.
type ChildrenIndex = HashMap<(ElemIdx, String, i64), Vec<usize>>;

fn build_children_index(
    aig: &Aig,
    graph: &TaskGraph,
    store: &RelStore,
) -> Result<ChildrenIndex, MediatorError> {
    let mut index: ChildrenIndex = HashMap::new();
    for &elem in &graph.materialized {
        if elem == aig.root {
            continue;
        }
        let rel = store.get(&RelKey::Instances(elem))?;
        let (pc, oc, ordc) = (
            rel.col("__parent").map_err(MediatorError::Store)?,
            rel.col("__occ").map_err(MediatorError::Store)?,
            rel.col("__ord").map_err(MediatorError::Store)?,
        );
        let mut buckets: HashMap<(String, i64), Vec<(i64, usize)>> = HashMap::new();
        for pos in 0..rel.len() {
            let occ = rel.cell(pos, oc).to_text();
            let parent = rel.cell(pos, pc).as_int().unwrap_or(-1);
            let ord = rel.cell(pos, ordc).as_int().unwrap_or(0);
            buckets.entry((occ, parent)).or_default().push((ord, pos));
        }
        for ((occ, parent), mut entries) in buckets {
            entries.sort();
            index.insert(
                (elem, occ, parent),
                entries.into_iter().map(|(_, pos)| pos).collect(),
            );
        }
    }
    Ok(index)
}

struct Tagger<'a> {
    aig: &'a Aig,
    graph: &'a TaskGraph,
    store: &'a RelStore,
    children_index: ChildrenIndex,
}

impl Tagger<'_> {
    fn binding(&self, occ: &Occ) -> Result<&Binding, MediatorError> {
        self.graph.bindings.get(occ).ok_or_else(|| {
            MediatorError::Internal(format!("unknown occurrence {}", occ.key(self.aig)))
        })
    }

    /// Emits the children of the element at `binding` for the base instance
    /// `base_idx` (a row position in `T_base`) under `node`.
    fn tag_children(
        &self,
        tree: &mut XmlTree,
        node: NodeId,
        binding: &Binding,
        base_idx: usize,
    ) -> Result<(), MediatorError> {
        let info = self.aig.elem_info(binding.elem);
        match &info.prod {
            Prod::Empty => Ok(()),
            Prod::Pcdata { text } => {
                let value = self.scalar_at(binding, text, base_idx)?;
                tree.add_text(node, value.to_text());
                Ok(())
            }
            Prod::Items(items) => {
                let base = self.store.get(&RelKey::Instances(binding.occ.base))?;
                let rowid = base
                    .cell(base_idx, base.col("__rowid").map_err(MediatorError::Store)?)
                    .as_int()
                    .unwrap_or(-1);
                for (pos, item) in items.iter().enumerate() {
                    let child_info = self.aig.elem_info(item.elem);
                    if child_info.internal {
                        continue; // computation states are not tagged
                    }
                    if item.star {
                        let tag = occ_tag(self.aig, &binding.occ, pos);
                        let child_binding = self.binding(&Occ::mat(item.elem))?;
                        let t_child = self.store.get(&RelKey::Instances(item.elem))?;
                        if let Some(rows) = self.children_index.get(&(item.elem, tag, rowid)) {
                            for &child_pos in rows {
                                let child_node =
                                    tree.add_element(node, child_info.tag().to_string());
                                self.tag_children(tree, child_node, child_binding, child_pos)?;
                                let _ = t_child;
                            }
                        }
                    } else {
                        let child_occ = binding.occ.child(pos);
                        let child_binding = self.binding(&child_occ)?;
                        let child_node = tree.add_element(node, child_info.tag().to_string());
                        self.tag_children(tree, child_node, child_binding, base_idx)?;
                    }
                }
                Ok(())
            }
            Prod::Choice { branches, .. } => {
                let base = self.store.get(&RelKey::Instances(binding.occ.base))?;
                let rowid = base
                    .cell(base_idx, base.col("__rowid").map_err(MediatorError::Store)?)
                    .as_int()
                    .unwrap_or(-1);
                for (bno, branch) in branches.iter().enumerate() {
                    let tag = branch_tag(self.aig, &binding.occ, bno);
                    if let Some(rows) = self.children_index.get(&(branch.elem, tag, rowid)) {
                        let child_info = self.aig.elem_info(branch.elem);
                        let child_binding = self.binding(&Occ::mat(branch.elem))?;
                        for &child_pos in rows {
                            let child_node = tree.add_element(node, child_info.tag().to_string());
                            self.tag_children(tree, child_node, child_binding, child_pos)?;
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Star/choice child row positions for one parent row, or an empty
    /// slice when the index has no bucket.
    fn child_rows(&self, elem: ElemIdx, tag: String, rowid: i64) -> &[usize] {
        self.children_index
            .get(&(elem, tag, rowid))
            .map(|rows| rows.as_slice())
            .unwrap_or(&[])
    }

    /// The `__rowid` of the base instance at `base_idx`.
    fn rowid_at(&self, binding: &Binding, base_idx: usize) -> Result<i64, MediatorError> {
        let base = self.store.get(&RelKey::Instances(binding.occ.base))?;
        Ok(base
            .cell(base_idx, base.col("__rowid").map_err(MediatorError::Store)?)
            .as_int()
            .unwrap_or(-1))
    }

    fn scalar_at(
        &self,
        binding: &Binding,
        expr: &aig_core::spec::ValueExpr,
        base_idx: usize,
    ) -> Result<Value, MediatorError> {
        match resolve_scalar(self.aig, binding.elem, expr) {
            Some(ResolvedScalar::Const(v)) => Ok(v),
            Some(ResolvedScalar::InhField(f)) => match binding.scalars.get(&f) {
                Some(ScalarBind::Const(v)) => Ok(v.clone()),
                Some(ScalarBind::Col(c)) => {
                    let base: &Relation = self.store.get(&RelKey::Instances(binding.occ.base))?;
                    Ok(base
                        .cell(base_idx, base.col(c).map_err(MediatorError::Store)?)
                        .clone())
                }
                None => Err(MediatorError::Internal(format!(
                    "missing scalar binding `{f}`"
                ))),
            },
            None => Err(MediatorError::Unsupported(format!(
                "PCDATA of `{}` does not resolve through copy chains",
                self.aig.elem_name(binding.elem)
            ))),
        }
    }
}

/// Node accounting of one incremental retag.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetagStats {
    /// Nodes copied verbatim from the cached document.
    pub nodes_reused: usize,
    /// Nodes rebuilt from the spliced store (everything that was not a
    /// verbatim copy, including the correspondence spine).
    pub nodes_rebuilt: usize,
}

/// Rebuilds the document after an incremental re-execution, copying
/// subtrees untouched by the delta verbatim from the cached document.
///
/// `tainted` is the set of materialized elements whose instance tables the
/// re-run subgraph produced (see [`crate::delta::tainted_elems`]). The
/// walk mirrors [`tag_document`] with a positional correspondence cursor
/// into `cached`: at any element whose star/choice child sets cannot have
/// changed (no tainted child element), the child lists line up one-to-one
/// with the cached tree, so a child subtree containing no tainted element
/// anywhere below it is deep-copied wholesale without touching the store.
/// Where a tainted child element *could* have changed the child set, the
/// subtree rebuilds from the (spliced) store exactly as a cold tag would.
///
/// Because untainted instance relations are byte-identical to the cached
/// run's and the copy is verbatim, the result equals `tag_document` over
/// the spliced store node-for-node.
pub(crate) fn retag_document(
    aig: &Aig,
    graph: &TaskGraph,
    store: &RelStore,
    cached: &XmlTree,
    tainted: &HashSet<ElemIdx>,
) -> Result<(XmlTree, RetagStats), MediatorError> {
    if tainted.contains(&aig.root) {
        // Defensive: the root's producer binds request arguments and never
        // re-runs, but if it ever did there is nothing to reuse.
        let tree = tag_document(aig, graph, store)?;
        let stats = RetagStats {
            nodes_reused: 0,
            nodes_rebuilt: tree.len(),
        };
        return Ok((tree, stats));
    }
    let tagger = Tagger {
        aig,
        graph,
        store,
        children_index: build_children_index(aig, graph, store)?,
    };
    let root_info = aig.elem_info(aig.root);
    let mut tree = XmlTree::new(root_info.tag().to_string());
    let root_node = tree.root();
    let root_binding = tagger.binding(&Occ::mat(aig.root))?.clone();
    let base = store.get(&RelKey::Instances(aig.root))?;
    if base.len() != 1 {
        return Err(MediatorError::Internal(format!(
            "root instance table has {} rows",
            base.len()
        )));
    }
    let mut retagger = Retagger {
        dirty_below: dirty_below(aig, tainted),
        tagger,
        cached,
        tainted,
        nodes_reused: 0,
    };
    retagger.retag_children(&mut tree, root_node, &root_binding, 0, cached.root())?;
    let stats = RetagStats {
        nodes_reused: retagger.nodes_reused,
        // Every node that is not a verbatim copy was (re)built: the spine
        // of the correspondence walk plus the taint-rebuilt regions.
        nodes_rebuilt: tree.len() - retagger.nodes_reused,
    };
    Ok((tree, stats))
}

/// Elements from which a tainted element is reachable through the unfolded
/// productions (including the tainted elements themselves). A subtree
/// rooted outside this set contains no changed instance rows anywhere and
/// can be copied verbatim.
fn dirty_below(aig: &Aig, tainted: &HashSet<ElemIdx>) -> HashSet<ElemIdx> {
    let mut dirty = tainted.clone();
    // Fixpoint over the element productions; the unfolded AIG is shallow
    // (depth-bounded), so this converges in a few sweeps.
    loop {
        let mut changed = false;
        for elem in aig.elements() {
            if dirty.contains(&elem) {
                continue;
            }
            let hit = match &aig.elem_info(elem).prod {
                Prod::Items(items) => items
                    .iter()
                    .any(|i| !aig.elem_info(i.elem).internal && dirty.contains(&i.elem)),
                Prod::Choice { branches, .. } => branches.iter().any(|b| dirty.contains(&b.elem)),
                _ => false,
            };
            if hit {
                dirty.insert(elem);
                changed = true;
            }
        }
        if !changed {
            return dirty;
        }
    }
}

struct Retagger<'a> {
    tagger: Tagger<'a>,
    cached: &'a XmlTree,
    tainted: &'a HashSet<ElemIdx>,
    dirty_below: HashSet<ElemIdx>,
    nodes_reused: usize,
}

impl Retagger<'_> {
    /// Emits the children of `binding` at `base_idx` under `node`, reusing
    /// the cached node's subtrees wherever the delta cannot have reached.
    ///
    /// Invariant: `binding`'s element and its base instance table are
    /// untainted, so this node's child counts per production item equal
    /// the cached node's — unless a tainted child element intervenes, in
    /// which case the whole child list rebuilds from the store.
    fn retag_children(
        &mut self,
        tree: &mut XmlTree,
        node: NodeId,
        binding: &Binding,
        base_idx: usize,
        cached_node: NodeId,
    ) -> Result<(), MediatorError> {
        let info = self.tagger.aig.elem_info(binding.elem);
        match &info.prod {
            Prod::Empty => Ok(()),
            Prod::Pcdata { text } => {
                // The base table is untainted, so the value is unchanged;
                // recomputing it from the spliced store is equivalent and
                // keeps a single source of truth.
                let value = self.tagger.scalar_at(binding, text, base_idx)?;
                tree.add_text(node, value.to_text());
                Ok(())
            }
            Prod::Items(items) => {
                let star_tainted = items.iter().any(|i| {
                    i.star
                        && !self.tagger.aig.elem_info(i.elem).internal
                        && self.tainted.contains(&i.elem)
                });
                if star_tainted {
                    // A tainted star child: the child row set may have
                    // changed, so positional correspondence with the
                    // cached node ends here — rebuild from the store.
                    return self.tagger.tag_children(tree, node, binding, base_idx);
                }
                let rowid = self.tagger.rowid_at(binding, base_idx)?;
                let cached_children: Vec<NodeId> =
                    self.cached.element_children(cached_node).collect();
                let mut cursor = 0usize;
                for (pos, item) in items.iter().enumerate() {
                    let child_info = self.tagger.aig.elem_info(item.elem);
                    if child_info.internal {
                        continue;
                    }
                    if item.star {
                        let tag = occ_tag(self.tagger.aig, &binding.occ, pos);
                        let child_binding = self.tagger.binding(&Occ::mat(item.elem))?.clone();
                        let rows = self.tagger.child_rows(item.elem, tag, rowid).to_vec();
                        for child_pos in rows {
                            let cached_child = cached_children[cursor];
                            cursor += 1;
                            self.retag_child(tree, node, &child_binding, child_pos, cached_child)?;
                        }
                    } else {
                        let child_occ = binding.occ.child(pos);
                        let child_binding = self.tagger.binding(&child_occ)?.clone();
                        let cached_child = cached_children[cursor];
                        cursor += 1;
                        self.retag_child(tree, node, &child_binding, base_idx, cached_child)?;
                    }
                }
                Ok(())
            }
            Prod::Choice { branches, .. } => {
                if branches.iter().any(|b| self.tainted.contains(&b.elem)) {
                    return self.tagger.tag_children(tree, node, binding, base_idx);
                }
                let rowid = self.tagger.rowid_at(binding, base_idx)?;
                let cached_children: Vec<NodeId> =
                    self.cached.element_children(cached_node).collect();
                let mut cursor = 0usize;
                for (bno, branch) in branches.iter().enumerate() {
                    let tag = branch_tag(self.tagger.aig, &binding.occ, bno);
                    let child_binding = self.tagger.binding(&Occ::mat(branch.elem))?.clone();
                    let rows = self.tagger.child_rows(branch.elem, tag, rowid).to_vec();
                    for child_pos in rows {
                        let cached_child = cached_children[cursor];
                        cursor += 1;
                        self.retag_child(tree, node, &child_binding, child_pos, cached_child)?;
                    }
                }
                Ok(())
            }
        }
    }

    /// Emits one child element, choosing between verbatim copy, paired
    /// recursion, and store rebuild.
    fn retag_child(
        &mut self,
        tree: &mut XmlTree,
        parent: NodeId,
        binding: &Binding,
        base_idx: usize,
        cached_child: NodeId,
    ) -> Result<(), MediatorError> {
        let child_info = self.tagger.aig.elem_info(binding.elem);
        let child_node = tree.add_element(parent, child_info.tag().to_string());
        if !self.dirty_below.contains(&binding.elem) {
            // Nothing tainted anywhere below: the cached subtree is
            // verbatim what a cold tag over the spliced store would emit.
            self.copy_into(tree, child_node, cached_child);
            Ok(())
        } else {
            self.retag_children(tree, child_node, binding, base_idx, cached_child)
        }
    }

    /// Deep-copies the cached node's children under `dst`.
    fn copy_into(&mut self, tree: &mut XmlTree, dst: NodeId, src: NodeId) {
        for i in 0..self.cached.children(src).len() {
            let child = self.cached.children(src)[i];
            match self.cached.kind(child) {
                NodeKind::Element(tag) => {
                    let copied = tree.add_element(dst, tag.clone());
                    self.nodes_reused += 1;
                    self.copy_into(tree, copied, child);
                }
                NodeKind::Text(text) => {
                    tree.add_text(dst, text.clone());
                    self.nodes_reused += 1;
                }
            }
        }
    }
}
