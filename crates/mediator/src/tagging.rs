//! The tagging phase (paper §5.1): turning the cached output relations into
//! the final XML document.
//!
//! "In the tagging phase, the tagging plan is applied to these relations to
//! produce the final output document", entirely within the middleware. The
//! instance tables are indexed by `(occurrence, parent rowid)` — the
//! relational encoding of the root-to-node path — and the tree is written
//! top-down; internal computation states never appear (they are simply not
//! descended into), and PCDATA resolves through copy chains into instance
//! columns.

use crate::error::MediatorError;
use crate::exec::{branch_tag, occ_tag, RelStore};
use crate::graph::{Binding, Occ, RelKey, ScalarBind, TaskGraph};
use aig_core::copyelim::{resolve_scalar, ResolvedScalar};
use aig_core::spec::{Aig, ElemIdx, Prod};
use aig_relstore::{Relation, Value};
use aig_xml::{NodeId, XmlTree};
use std::collections::HashMap;

/// Builds the document from the executed relations.
pub fn tag_document(
    aig: &Aig,
    graph: &TaskGraph,
    store: &RelStore,
) -> Result<XmlTree, MediatorError> {
    let tagger = Tagger {
        aig,
        graph,
        store,
        children_index: build_children_index(aig, graph, store)?,
    };
    let root_info = aig.elem_info(aig.root);
    let mut tree = XmlTree::new(root_info.tag().to_string());
    let root_node = tree.root();
    let root_binding = tagger.binding(&Occ::mat(aig.root))?;
    let base = store.get(&RelKey::Instances(aig.root))?;
    if base.len() != 1 {
        return Err(MediatorError::Internal(format!(
            "root instance table has {} rows",
            base.len()
        )));
    }
    tagger.tag_children(&mut tree, root_node, root_binding, 0)?;
    Ok(tree)
}

/// Index: (element, `__occ` tag, parent rowid) → ordered child row
/// positions.
type ChildrenIndex = HashMap<(ElemIdx, String, i64), Vec<usize>>;

fn build_children_index(
    aig: &Aig,
    graph: &TaskGraph,
    store: &RelStore,
) -> Result<ChildrenIndex, MediatorError> {
    let mut index: ChildrenIndex = HashMap::new();
    for &elem in &graph.materialized {
        if elem == aig.root {
            continue;
        }
        let rel = store.get(&RelKey::Instances(elem))?;
        let (pc, oc, ordc) = (
            rel.col("__parent").map_err(MediatorError::Store)?,
            rel.col("__occ").map_err(MediatorError::Store)?,
            rel.col("__ord").map_err(MediatorError::Store)?,
        );
        let mut buckets: HashMap<(String, i64), Vec<(i64, usize)>> = HashMap::new();
        for pos in 0..rel.len() {
            let occ = rel.cell(pos, oc).to_text();
            let parent = rel.cell(pos, pc).as_int().unwrap_or(-1);
            let ord = rel.cell(pos, ordc).as_int().unwrap_or(0);
            buckets.entry((occ, parent)).or_default().push((ord, pos));
        }
        for ((occ, parent), mut entries) in buckets {
            entries.sort();
            index.insert(
                (elem, occ, parent),
                entries.into_iter().map(|(_, pos)| pos).collect(),
            );
        }
    }
    Ok(index)
}

struct Tagger<'a> {
    aig: &'a Aig,
    graph: &'a TaskGraph,
    store: &'a RelStore,
    children_index: ChildrenIndex,
}

impl Tagger<'_> {
    fn binding(&self, occ: &Occ) -> Result<&Binding, MediatorError> {
        self.graph.bindings.get(occ).ok_or_else(|| {
            MediatorError::Internal(format!("unknown occurrence {}", occ.key(self.aig)))
        })
    }

    /// Emits the children of the element at `binding` for the base instance
    /// `base_idx` (a row position in `T_base`) under `node`.
    fn tag_children(
        &self,
        tree: &mut XmlTree,
        node: NodeId,
        binding: &Binding,
        base_idx: usize,
    ) -> Result<(), MediatorError> {
        let info = self.aig.elem_info(binding.elem);
        match &info.prod {
            Prod::Empty => Ok(()),
            Prod::Pcdata { text } => {
                let value = self.scalar_at(binding, text, base_idx)?;
                tree.add_text(node, value.to_text());
                Ok(())
            }
            Prod::Items(items) => {
                let base = self.store.get(&RelKey::Instances(binding.occ.base))?;
                let rowid = base
                    .cell(base_idx, base.col("__rowid").map_err(MediatorError::Store)?)
                    .as_int()
                    .unwrap_or(-1);
                for (pos, item) in items.iter().enumerate() {
                    let child_info = self.aig.elem_info(item.elem);
                    if child_info.internal {
                        continue; // computation states are not tagged
                    }
                    if item.star {
                        let tag = occ_tag(self.aig, &binding.occ, pos);
                        let child_binding = self.binding(&Occ::mat(item.elem))?;
                        let t_child = self.store.get(&RelKey::Instances(item.elem))?;
                        if let Some(rows) = self.children_index.get(&(item.elem, tag, rowid)) {
                            for &child_pos in rows {
                                let child_node =
                                    tree.add_element(node, child_info.tag().to_string());
                                self.tag_children(tree, child_node, child_binding, child_pos)?;
                                let _ = t_child;
                            }
                        }
                    } else {
                        let child_occ = binding.occ.child(pos);
                        let child_binding = self.binding(&child_occ)?;
                        let child_node = tree.add_element(node, child_info.tag().to_string());
                        self.tag_children(tree, child_node, child_binding, base_idx)?;
                    }
                }
                Ok(())
            }
            Prod::Choice { branches, .. } => {
                let base = self.store.get(&RelKey::Instances(binding.occ.base))?;
                let rowid = base
                    .cell(base_idx, base.col("__rowid").map_err(MediatorError::Store)?)
                    .as_int()
                    .unwrap_or(-1);
                for (bno, branch) in branches.iter().enumerate() {
                    let tag = branch_tag(self.aig, &binding.occ, bno);
                    if let Some(rows) = self.children_index.get(&(branch.elem, tag, rowid)) {
                        let child_info = self.aig.elem_info(branch.elem);
                        let child_binding = self.binding(&Occ::mat(branch.elem))?;
                        for &child_pos in rows {
                            let child_node = tree.add_element(node, child_info.tag().to_string());
                            self.tag_children(tree, child_node, child_binding, child_pos)?;
                        }
                    }
                }
                Ok(())
            }
        }
    }

    fn scalar_at(
        &self,
        binding: &Binding,
        expr: &aig_core::spec::ValueExpr,
        base_idx: usize,
    ) -> Result<Value, MediatorError> {
        match resolve_scalar(self.aig, binding.elem, expr) {
            Some(ResolvedScalar::Const(v)) => Ok(v),
            Some(ResolvedScalar::InhField(f)) => match binding.scalars.get(&f) {
                Some(ScalarBind::Const(v)) => Ok(v.clone()),
                Some(ScalarBind::Col(c)) => {
                    let base: &Relation = self.store.get(&RelKey::Instances(binding.occ.base))?;
                    Ok(base
                        .cell(base_idx, base.col(c).map_err(MediatorError::Store)?)
                        .clone())
                }
                None => Err(MediatorError::Internal(format!(
                    "missing scalar binding `{f}`"
                ))),
            },
            None => Err(MediatorError::Unsupported(format!(
                "PCDATA of `{}` does not resolve through copy chains",
                self.aig.elem_name(binding.elem)
            ))),
        }
    }
}
