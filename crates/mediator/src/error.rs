//! Error type of the mediator.

use aig_core::AigError;
use aig_relstore::StoreError;
use aig_sql::SqlError;
use std::fmt;

/// Errors from planning or executing an AIG through the mediator.
#[derive(Debug, Clone, PartialEq)]
pub enum MediatorError {
    /// The AIG uses a feature outside the set-oriented evaluator's scope
    /// (the conceptual evaluator in `aig-core` handles the full language).
    Unsupported(String),
    /// An inconsistency in the built task graph.
    Internal(String),
    /// The recursion kept extending past the configured maximum depth.
    RecursionBudget {
        max_depth: usize,
    },
    /// A source kept failing a task until the retry budget ran out.
    SourceFault {
        source: String,
        task: String,
        kind: String,
        attempts: usize,
    },
    /// A source suffered a hard outage with no usable replica; the named
    /// tasks could not be executed anywhere.
    SourceUnavailable {
        source: String,
        lost_tasks: Vec<String>,
    },
    /// The integrity defense caught wrong data: a shipped relation or the
    /// tagged document violated a schema/key/inclusion constraint and the
    /// retry budget could not mask it. Names the task, table, and violated
    /// constraint so the caller knows exactly what was refused — the
    /// alternative would have been a silently wrong document.
    IntegrityViolation {
        task: String,
        source: String,
        table: String,
        constraint: String,
        value: String,
    },
    /// A cost graph carried a non-finite or negative evaluation time or
    /// edge size, which would poison the scheduler's priority ordering.
    InvalidCost {
        node: usize,
        detail: String,
    },
    /// Wrapped specification/evaluation error.
    Aig(AigError),
    Sql(SqlError),
    Store(StoreError),
}

impl fmt::Display for MediatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediatorError::Unsupported(msg) => {
                write!(f, "unsupported by the set-oriented evaluator: {msg}")
            }
            MediatorError::Internal(msg) => write!(f, "mediator internal error: {msg}"),
            MediatorError::RecursionBudget { max_depth } => write!(
                f,
                "recursive data exceeds the maximum unfolding depth {max_depth}"
            ),
            MediatorError::SourceFault {
                source,
                task,
                kind,
                attempts,
            } => write!(
                f,
                "source {source} failed task {task} ({kind}) after {attempts} attempt(s)"
            ),
            MediatorError::SourceUnavailable { source, lost_tasks } => write!(
                f,
                "source {source} is unavailable with no replica; lost tasks: {}",
                lost_tasks.join(", ")
            ),
            MediatorError::IntegrityViolation {
                task,
                source,
                table,
                constraint,
                value,
            } => {
                write!(
                    f,
                    "integrity violation in task {task} (source {source}, table {table}): \
                     constraint {constraint} violated"
                )?;
                if !value.is_empty() {
                    write!(f, " by {value}")?;
                }
                Ok(())
            }
            MediatorError::InvalidCost { node, detail } => {
                write!(f, "invalid cost input at node {node}: {detail}")
            }
            MediatorError::Aig(e) => e.fmt(f),
            MediatorError::Sql(e) => e.fmt(f),
            MediatorError::Store(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for MediatorError {}

impl From<AigError> for MediatorError {
    fn from(e: AigError) -> Self {
        MediatorError::Aig(e)
    }
}

impl From<SqlError> for MediatorError {
    fn from(e: SqlError) -> Self {
        MediatorError::Sql(e)
    }
}

impl From<StoreError> for MediatorError {
    fn from(e: StoreError) -> Self {
        MediatorError::Store(e)
    }
}
