//! Error type of the mediator.

use aig_core::AigError;
use aig_relstore::StoreError;
use aig_sql::SqlError;
use std::fmt;

/// A contradiction or degenerate value in [`MediatorOptions`] caught at
/// build time, before any planning or execution happens.
///
/// Historically the pipeline silently clamped degenerate knobs (`threads: 0`
/// became 1 via `.max(1)`), which hid caller bugs: a config file that
/// computed `threads` from a broken formula ran single-threaded forever
/// without anyone noticing. The builder now refuses these values instead.
///
/// [`MediatorOptions`]: crate::pipeline::MediatorOptions
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `threads` was 0 — the executor needs at least one worker.
    ZeroThreads,
    /// `par_threshold` was 0 — every relation (even empty ones) would be
    /// split for parallel dedup, which degenerates into pure overhead.
    ZeroParThreshold,
    /// `batch_rows` was 0 — batches could never make progress. Rejected
    /// even when batching is off, so flipping `batching` on later cannot
    /// surface a latent bad knob.
    ZeroBatchRows,
    /// `batching` was requested with `shipcut` disabled. Chunked shipment
    /// slices the *ship image* that the ship-cut computes; without it the
    /// batching knobs are dead weight and the caller almost certainly
    /// misconfigured one of the two.
    BatchingWithoutShipcut,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroThreads => {
                write!(f, "invalid config: threads must be at least 1, got 0")
            }
            ConfigError::ZeroParThreshold => {
                write!(f, "invalid config: par_threshold must be at least 1, got 0")
            }
            ConfigError::ZeroBatchRows => {
                write!(f, "invalid config: batch_rows must be at least 1, got 0")
            }
            ConfigError::BatchingWithoutShipcut => write!(
                f,
                "invalid config: batching requires shipcut (chunked shipment \
                 slices the ship image the ship-cut computes)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Errors from planning or executing an AIG through the mediator.
#[derive(Debug, Clone, PartialEq)]
pub enum MediatorError {
    /// The AIG uses a feature outside the set-oriented evaluator's scope
    /// (the conceptual evaluator in `aig-core` handles the full language).
    Unsupported(String),
    /// An inconsistency in the built task graph.
    Internal(String),
    /// The caller's [`MediatorOptions`] were rejected at validation time.
    ///
    /// [`MediatorOptions`]: crate::pipeline::MediatorOptions
    Config(ConfigError),
    /// The recursion kept extending past the configured maximum depth.
    RecursionBudget {
        max_depth: usize,
    },
    /// A source kept failing a task until the retry budget ran out.
    SourceFault {
        source: String,
        task: String,
        kind: String,
        attempts: usize,
    },
    /// A source suffered a hard outage with no usable replica; the named
    /// tasks could not be executed anywhere.
    SourceUnavailable {
        source: String,
        lost_tasks: Vec<String>,
    },
    /// The integrity defense caught wrong data: a shipped relation or the
    /// tagged document violated a schema/key/inclusion constraint and the
    /// retry budget could not mask it. Names the task, table, and violated
    /// constraint so the caller knows exactly what was refused — the
    /// alternative would have been a silently wrong document.
    IntegrityViolation {
        task: String,
        source: String,
        table: String,
        constraint: String,
        value: String,
    },
    /// A cost graph carried a non-finite or negative evaluation time or
    /// edge size, which would poison the scheduler's priority ordering.
    InvalidCost {
        node: usize,
        detail: String,
    },
    /// The server's admission control refused the request: accepting it
    /// would push the named limit (global queue depth, in-flight slots, or
    /// the tenant's fair share) past its configured bound. Structured so
    /// the caller can tell *which* limit it hit and back off accordingly.
    Overloaded {
        tenant: String,
        /// The limit that tripped: `"queue"`, `"in_flight"`, or `"tenant"`.
        scope: String,
        depth: usize,
        limit: usize,
    },
    /// The request's deadline budget ran out before the named task could
    /// start (or finish) an attempt. Surfaced instead of letting the
    /// request hang past its budget.
    DeadlineExceeded {
        task: String,
        budget_secs: f64,
        elapsed_secs: f64,
    },
    /// Wrapped specification/evaluation error.
    Aig(AigError),
    Sql(SqlError),
    Store(StoreError),
}

impl fmt::Display for MediatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediatorError::Unsupported(msg) => {
                write!(f, "unsupported by the set-oriented evaluator: {msg}")
            }
            MediatorError::Internal(msg) => write!(f, "mediator internal error: {msg}"),
            MediatorError::Config(e) => e.fmt(f),
            MediatorError::RecursionBudget { max_depth } => write!(
                f,
                "recursive data exceeds the maximum unfolding depth {max_depth}"
            ),
            MediatorError::SourceFault {
                source,
                task,
                kind,
                attempts,
            } => write!(
                f,
                "source {source} failed task {task} ({kind}) after {attempts} attempt(s)"
            ),
            MediatorError::SourceUnavailable { source, lost_tasks } => write!(
                f,
                "source {source} is unavailable with no replica; lost tasks: {}",
                lost_tasks.join(", ")
            ),
            MediatorError::IntegrityViolation {
                task,
                source,
                table,
                constraint,
                value,
            } => {
                write!(
                    f,
                    "integrity violation in task {task} (source {source}, table {table}): \
                     constraint {constraint} violated"
                )?;
                if !value.is_empty() {
                    write!(f, " by {value}")?;
                }
                Ok(())
            }
            MediatorError::InvalidCost { node, detail } => {
                write!(f, "invalid cost input at node {node}: {detail}")
            }
            MediatorError::Overloaded {
                tenant,
                scope,
                depth,
                limit,
            } => write!(
                f,
                "request from tenant {tenant} rejected: {scope} limit reached ({depth} of {limit})"
            ),
            MediatorError::DeadlineExceeded {
                task,
                budget_secs,
                elapsed_secs,
            } => write!(
                f,
                "deadline budget of {budget_secs:.3}s exceeded at task {task} \
                 ({elapsed_secs:.3}s elapsed)"
            ),
            MediatorError::Aig(e) => e.fmt(f),
            MediatorError::Sql(e) => e.fmt(f),
            MediatorError::Store(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for MediatorError {}

impl From<ConfigError> for MediatorError {
    fn from(e: ConfigError) -> Self {
        MediatorError::Config(e)
    }
}

impl From<AigError> for MediatorError {
    fn from(e: AigError) -> Self {
        MediatorError::Aig(e)
    }
}

impl From<SqlError> for MediatorError {
    fn from(e: SqlError) -> Self {
        MediatorError::Sql(e)
    }
}

impl From<StoreError> for MediatorError {
    fn from(e: StoreError) -> Self {
        MediatorError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every variant renders a non-empty, self-describing message carrying
    /// its structured fields — the server's outcome ledger relies on these
    /// being distinguishable without string parsing on the way back in.
    #[test]
    fn every_variant_displays_its_fields() {
        let cases: Vec<(MediatorError, &[&str])> = vec![
            (
                MediatorError::Unsupported("order-by".into()),
                &["unsupported", "order-by"],
            ),
            (
                MediatorError::Internal("orphan task".into()),
                &["internal error", "orphan task"],
            ),
            (
                MediatorError::Config(ConfigError::ZeroBatchRows),
                &["invalid config", "batch_rows"],
            ),
            (
                MediatorError::Config(ConfigError::BatchingWithoutShipcut),
                &["invalid config", "batching requires shipcut"],
            ),
            (
                MediatorError::RecursionBudget { max_depth: 7 },
                &["maximum unfolding depth 7"],
            ),
            (
                MediatorError::SourceFault {
                    source: "DB2".into(),
                    task: "gen[report]".into(),
                    kind: "transient".into(),
                    attempts: 3,
                },
                &["DB2", "gen[report]", "transient", "3 attempt"],
            ),
            (
                MediatorError::SourceUnavailable {
                    source: "DB3".into(),
                    lost_tasks: vec!["a".into(), "b".into()],
                },
                &["DB3", "no replica", "a, b"],
            ),
            (
                MediatorError::IntegrityViolation {
                    task: "t".into(),
                    source: "DB1".into(),
                    table: "patient".into(),
                    constraint: "key(ssn)".into(),
                    value: "123".into(),
                },
                &[
                    "integrity violation",
                    "DB1",
                    "patient",
                    "key(ssn)",
                    "by 123",
                ],
            ),
            (
                MediatorError::InvalidCost {
                    node: 4,
                    detail: "negative eval".into(),
                },
                &["node 4", "negative eval"],
            ),
            (
                MediatorError::Overloaded {
                    tenant: "acme".into(),
                    scope: "queue".into(),
                    depth: 64,
                    limit: 64,
                },
                &["tenant acme", "queue limit", "64 of 64"],
            ),
            (
                MediatorError::DeadlineExceeded {
                    task: "gen[report]".into(),
                    budget_secs: 0.25,
                    elapsed_secs: 0.31,
                },
                &["deadline budget of 0.250s", "gen[report]", "0.310s elapsed"],
            ),
            (
                MediatorError::Aig(aig_core::AigError::Spec("bad rule".into())),
                &["bad rule"],
            ),
            (
                MediatorError::Sql(aig_sql::SqlError::Bind("no column x".into())),
                &["no column x"],
            ),
            (
                MediatorError::Store(aig_relstore::StoreError::NoSuchSource("DB9".into())),
                &["DB9"],
            ),
        ];
        for (err, needles) in cases {
            let text = err.to_string();
            assert!(!text.is_empty(), "{err:?}");
            for needle in needles {
                assert!(text.contains(needle), "{text:?} missing {needle:?}");
            }
        }
    }

    /// An IntegrityViolation with no offending value omits the trailing
    /// `by ...` clause instead of printing a dangling preposition.
    #[test]
    fn integrity_violation_without_value_has_no_by_clause() {
        let err = MediatorError::IntegrityViolation {
            task: "t".into(),
            source: "DB1".into(),
            table: "patient".into(),
            constraint: "key(ssn)".into(),
            value: String::new(),
        };
        assert!(!err.to_string().contains(" by "));
    }
}
