//! Algorithm `Merge` (paper §5.4, Fig. 9).
//!
//! Query merging combines queries executed at the same data source into a
//! single, larger query (an outer-union with a tagging column for
//! independent queries, inlining for dependent ones). Merging saves the
//! fixed per-statement overhead and ships shared inputs once, but reduces
//! parallelism — so it is optimized *jointly with scheduling*: each
//! candidate pair is accepted only if the rescheduled plan is cheaper.
//!
//! `mergePair` contracts two nodes of the dependency graph; the result must
//! stay acyclic. The loop greedily applies the best pair until no pair
//! improves `cost(Schedule(G))`, exactly as in Fig. 9.

use crate::cost::{response_time, CostGraph, Plan};
use crate::schedule::schedule;
use crate::sim::NetworkModel;
use aig_relstore::SourceId;
use std::collections::HashMap;

/// One accepted pair merge: which task groups were combined at which source,
/// and the scheduled cost before and after (the decision log consumed by
/// [`crate::obs`]).
#[derive(Debug, Clone)]
pub struct MergeDecision {
    /// The (non-mediator) source both nodes queried.
    pub source: SourceId,
    /// Original task ids of the node kept.
    pub kept: Vec<usize>,
    /// Original task ids of the node absorbed into it.
    pub absorbed: Vec<usize>,
    /// `cost(Schedule(G))` before this merge.
    pub cost_before_secs: f64,
    /// `cost(Schedule(G))` after it (always strictly smaller).
    pub cost_after_secs: f64,
}

/// The outcome of the merging phase.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The merged dependency graph.
    pub graph: CostGraph,
    /// The final schedule for it.
    pub plan: Plan,
    /// `cost(P)` of the final plan.
    pub response_secs: f64,
    /// Number of pair merges applied.
    pub merges: usize,
    /// Why each merge was accepted, in application order.
    pub decisions: Vec<MergeDecision>,
}

/// `mergePair(G, u, v)`: contracts `v` into `u`. Incoming parallel edges
/// from the same producer collapse to one shipment (the producer's table
/// travels once); outgoing edges keep their per-part sizes ("the relevant
/// tuples are extracted before shipping", so communication costs are
/// unchanged). The merged query costs the sum of its parts minus one
/// per-statement overhead.
pub fn merge_pair(graph: &CostGraph, u: usize, v: usize, overhead_saving_secs: f64) -> CostGraph {
    merge_pair_into(graph, u.min(v), u.max(v), overhead_saving_secs)
}

/// Contracts `absorbed` into `keep`, keeping `keep`'s source and
/// mergeability (used both by `Merge` and by mediator pass-through
/// contraction). `keep < absorbed` is not required.
pub fn merge_pair_into(
    graph: &CostGraph,
    keep: usize,
    absorbed: usize,
    overhead_saving_secs: f64,
) -> CostGraph {
    debug_assert_ne!(keep, absorbed);
    let gone = absorbed;
    let mut nodes = graph.nodes.clone();
    let mut deps = graph.deps.clone();
    // Fold v's cost and membership into u.
    // The saved per-statement overhead cannot exceed the combined work:
    // evaluation time stays non-negative.
    nodes[keep].eval_secs =
        (nodes[keep].eval_secs + nodes[gone].eval_secs - overhead_saving_secs).max(0.0);
    let members = nodes[gone].members.clone();
    nodes[keep].members.extend(members);
    // Rewire edges: every reference to `gone` becomes `keep`.
    for dep_list in deps.iter_mut() {
        for (d, _) in dep_list.iter_mut() {
            if *d == gone {
                *d = keep;
            }
        }
    }
    let gone_deps = deps[gone].clone();
    deps[keep].extend(gone_deps);
    // Self-edges (the pair was dependent: inlining) disappear.
    deps[keep].retain(|(d, _)| *d != keep);
    // Collapse parallel in-edges from the same producer: shipped once.
    let mut best: HashMap<usize, f64> = HashMap::new();
    for (d, bytes) in &deps[keep] {
        let e = best.entry(*d).or_insert(0.0);
        *e = e.max(*bytes);
    }
    deps[keep] = best.into_iter().collect();
    deps[keep].sort_by_key(|(d, _)| *d);
    // Remove the dead node by swapping in the last one. `swap_remove`
    // discards the absorbed node's dependency list (already folded into
    // `keep`) and moves the last node's list into its slot; every edge
    // referencing the moved node is then re-pointed at its new index.
    let last = nodes.len() - 1;
    nodes.swap_remove(gone);
    deps.swap_remove(gone);
    if gone != last {
        for dep_list in deps.iter_mut() {
            for (d, _) in dep_list.iter_mut() {
                if *d == last {
                    *d = gone;
                }
            }
        }
    }
    CostGraph { nodes, deps }
}

/// Algorithm `Merge` (Fig. 9): greedy pairwise merging guided by the cost of
/// the rescheduled plan.
pub fn merge(graph: &CostGraph, net: &NetworkModel, overhead_saving_secs: f64) -> MergeOutcome {
    let mut current = graph.clone();
    let mut plan = schedule(&current, net);
    let mut cost = response_time(&current, &plan, net);
    let mut merges = 0;
    let mut decisions = Vec::new();
    loop {
        let mut best: Option<(CostGraph, Plan, f64, usize, usize)> = None;
        // Candidate pairs: mergeable nodes at the same (non-mediator) source.
        for u in 0..current.len() {
            if !current.nodes[u].mergeable {
                continue;
            }
            for v in (u + 1)..current.len() {
                if !current.nodes[v].mergeable || current.nodes[u].source != current.nodes[v].source
                {
                    continue;
                }
                let candidate = merge_pair(&current, u, v, overhead_saving_secs);
                if candidate.topo().is_none() {
                    continue; // the merge would create a cycle
                }
                let candidate_plan = schedule(&candidate, net);
                let candidate_cost = response_time(&candidate, &candidate_plan, net);
                if candidate_cost < cost
                    && best
                        .as_ref()
                        .map(|(_, _, c, _, _)| candidate_cost < *c)
                        .unwrap_or(true)
                {
                    best = Some((candidate, candidate_plan, candidate_cost, u, v));
                }
            }
        }
        match best {
            Some((g, p, c, u, v)) => {
                decisions.push(MergeDecision {
                    source: current.nodes[u].source,
                    kept: current.nodes[u].members.clone(),
                    absorbed: current.nodes[v].members.clone(),
                    cost_before_secs: cost,
                    cost_after_secs: c,
                });
                current = g;
                plan = p;
                cost = c;
                merges += 1;
            }
            None => break,
        }
    }
    MergeOutcome {
        graph: current,
        plan,
        response_secs: cost,
        merges,
        decisions,
    }
}

/// Convenience: the unmerged baseline (schedule only).
pub fn no_merge(graph: &CostGraph, net: &NetworkModel) -> MergeOutcome {
    let plan = schedule(graph, net);
    let response_secs = response_time(graph, &plan, net);
    MergeOutcome {
        graph: graph.clone(),
        plan,
        response_secs,
        merges: 0,
        decisions: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostNode;
    use aig_relstore::SourceId;

    fn node(source: u32, eval: f64) -> CostNode {
        CostNode {
            source: SourceId(source),
            eval_secs: eval,
            mergeable: source != 0,
            passthrough: false,
            members: vec![],
        }
    }

    /// Two independent queries at S1 both feeding a mediator combine.
    fn two_queries() -> CostGraph {
        CostGraph {
            nodes: vec![node(1, 0.5), node(1, 0.5), node(0, 0.1)],
            deps: vec![vec![], vec![], vec![(0, 1000.0), (1, 1000.0)]],
        }
    }

    #[test]
    fn merging_two_same_source_queries_saves_overhead() {
        let g = two_queries();
        let net = NetworkModel::mbps(1.0);
        let baseline = no_merge(&g, &net);
        let merged = merge(&g, &net, 0.4);
        assert_eq!(merged.merges, 1);
        assert!(merged.response_secs < baseline.response_secs);
        // Cost: the merged node runs 0.5+0.5-0.4 instead of two sequential
        // halves at the same source.
        assert_eq!(merged.graph.len(), 2);
    }

    #[test]
    fn merge_rejects_cycles() {
        // q0 (S1) -> m (mediator) -> q1 (S1): merging q0 with q1 would put
        // the mediator node both up- and downstream -> cycle -> rejected.
        let g = CostGraph {
            nodes: vec![node(1, 1.0), node(0, 0.1), node(1, 1.0)],
            deps: vec![vec![], vec![(0, 10.0)], vec![(1, 10.0)]],
        };
        let net = NetworkModel::mbps(1.0);
        let merged = merge(&g, &net, 0.9);
        assert_eq!(merged.merges, 0, "cyclic merge must be rejected");
    }

    #[test]
    fn merge_pair_collapses_shared_inputs() {
        // p feeds u and v; after merging u,v the input ships once.
        let g = CostGraph {
            nodes: vec![node(2, 1.0), node(1, 1.0), node(1, 1.0)],
            deps: vec![vec![], vec![(0, 500.0)], vec![(0, 500.0)]],
        };
        let merged = merge_pair(&g, 1, 2, 0.0);
        assert_eq!(merged.len(), 2);
        let merged_node = merged
            .nodes
            .iter()
            .position(|n| n.source == SourceId(1))
            .unwrap();
        assert_eq!(merged.deps[merged_node].len(), 1);
        assert_eq!(merged.deps[merged_node][0].1, 500.0);
    }

    #[test]
    fn dependent_merge_inlines() {
        // u -> v at the same source: merging removes the self-edge.
        let g = CostGraph {
            nodes: vec![node(1, 1.0), node(1, 2.0)],
            deps: vec![vec![], vec![(0, 100.0)]],
        };
        let merged = merge_pair(&g, 0, 1, 0.5);
        assert_eq!(merged.len(), 1);
        assert!(merged.deps[0].is_empty());
        assert!((merged.nodes[0].eval_secs - 2.5).abs() < 1e-9);
    }

    /// The estimate-phase ship-size fix matters: the same plan shape flips
    /// its merge decision when the producer's edge carries the pruned
    /// shipment size instead of the full-width relation. Two independent
    /// S1 queries feed one mediator combine; `u` produces a wide relation
    /// of which only a narrow slice ships. Priced at full width, merging
    /// serializes `v` behind `u`'s huge transfer and is rejected; priced at
    /// the pruned size, the transfer is negligible and the saved
    /// per-statement overhead wins.
    #[test]
    fn pruned_shipment_estimates_flip_the_merge_decision() {
        let graph_with_u_bytes = |bytes: f64| CostGraph {
            nodes: vec![node(1, 1.0), node(1, 1.0), node(0, 0.1)],
            deps: vec![vec![], vec![], vec![(0, bytes), (1, 1_000.0)]],
        };
        let net = NetworkModel::mbps(1.0);
        let overhead = 0.5;
        let full = merge(&graph_with_u_bytes(1_000_000.0), &net, overhead);
        assert_eq!(full.merges, 0, "full-width estimate must reject the merge");
        let pruned = merge(&graph_with_u_bytes(100.0), &net, overhead);
        assert_eq!(pruned.merges, 1, "pruned estimate must accept the merge");
    }

    #[test]
    fn merging_never_increases_cost() {
        let g = two_queries();
        let net = NetworkModel::mbps(0.5);
        let baseline = no_merge(&g, &net);
        let merged = merge(&g, &net, 0.2);
        assert!(merged.response_secs <= baseline.response_secs + 1e-12);
    }
}
