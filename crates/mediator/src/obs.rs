//! Observability for the mediator pipeline: phase timers, per-task and
//! per-source metrics, merge/schedule decision logs, and a JSON-serializable
//! [`RunReport`] putting the simulated response times (§5.2) side by side
//! with the actual in-process wall clock.
//!
//! The report is produced by [`crate::pipeline::run_with_report`] and
//! serialized with the dependency-free [`crate::json`] writer so that the
//! bench binaries can emit machine-readable `BENCH_*.json` files.

use crate::cost::{completion_times, Plan, TaskCost};
use crate::exec::Measured;
use crate::faults::{FaultOutcome, IntegrityLog, IntegrityOutcome, ResilienceLog};
use crate::graph::{TaskGraph, TaskKind};
use crate::json::Json;
use crate::merge::MergeOutcome;
use crate::sim::NetworkModel;
use aig_relstore::{Catalog, SourceId};
use std::collections::HashSet;
use std::time::Instant;

/// Accumulated wall-clock time of one pipeline phase. Phases entered more
/// than once (the frontier-driven re-unfold loop, §5.5) accumulate their
/// seconds and call counts; `first_start_secs` is the offset of the first
/// entry from the start of the run, so samples sort chronologically.
#[derive(Debug, Clone)]
pub struct PhaseSample {
    pub name: String,
    pub calls: usize,
    pub secs: f64,
    pub first_start_secs: f64,
}

/// A phase stopwatch anchored at the start of the run.
#[derive(Debug)]
pub struct Phases {
    epoch: Instant,
    samples: Vec<PhaseSample>,
}

impl Default for Phases {
    fn default() -> Self {
        Phases::new()
    }
}

impl Phases {
    pub fn new() -> Phases {
        Phases {
            epoch: Instant::now(),
            samples: Vec::new(),
        }
    }

    /// Runs `f`, charging its wall-clock time to `name`.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let offset = (start - self.epoch).as_secs_f64();
        let result = f();
        self.record(name, offset, start.elapsed().as_secs_f64());
        result
    }

    /// Accumulates `secs` under `name`.
    pub fn record(&mut self, name: &str, start_secs: f64, secs: f64) {
        if let Some(sample) = self.samples.iter_mut().find(|s| s.name == name) {
            sample.calls += 1;
            sample.secs += secs;
        } else {
            self.samples.push(PhaseSample {
                name: name.to_string(),
                calls: 1,
                secs,
                first_start_secs: start_secs,
            });
        }
    }

    /// Seconds since the stopwatch was created.
    pub fn elapsed_secs(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// The samples recorded so far, in chronological first-entry order.
    pub fn samples(&self) -> &[PhaseSample] {
        &self.samples
    }

    pub fn into_samples(self) -> Vec<PhaseSample> {
        self.samples
    }
}

/// Per-task record: the graph metadata plus measured execution and the
/// calibrated cost the simulation used for the same task.
#[derive(Debug, Clone)]
pub struct TaskObs {
    pub id: usize,
    pub label: String,
    /// Short task-kind tag (`gen`, `assemble`, `guard`, …).
    pub kind: String,
    pub source: String,
    pub source_id: u32,
    /// Rows read from distinct input relations.
    pub in_rows: f64,
    pub out_rows: f64,
    pub out_bytes: f64,
    /// Dictionary-encoded wire size of the full (unpruned) output — what
    /// shipping the whole relation would cost. Can exceed `out_bytes` on
    /// small all-distinct relations, where the dictionary is the data plus
    /// per-row codes.
    pub wire_bytes: f64,
    /// Bytes of the output's ship image after ship-cut column pruning
    /// (equal to `wire_bytes` when ship-cut is off or nothing was prunable;
    /// never larger — pruning is monotone under the wire encoding).
    pub ship_bytes: f64,
    /// Bytes this task's output ships over the simulated network (its ship
    /// image, counted once per consumer at a different source).
    pub shipped_bytes: f64,
    /// Batches the task's output crossed the ship seam in: 1 per shipped
    /// output on a materializing run, `ceil(image_rows / batch_rows)` under
    /// chunked shipment, 0 for guards and empty outputs.
    pub batches: u64,
    /// Actual in-process execution seconds.
    pub secs: f64,
    /// Queue/wait seconds before the task could start (parallel executor).
    pub wait_secs: f64,
    /// Start offset from the beginning of the execution phase.
    pub start_secs: f64,
    /// Calibrated evaluation cost used by the response-time simulation.
    pub sim_eval_secs: f64,
}

/// Per-source aggregates: actual busy time next to the simulated plan's
/// busy/idle split for the same source.
#[derive(Debug, Clone)]
pub struct SourceObs {
    pub name: String,
    pub id: u32,
    /// Tasks of the (uncontracted) task graph at this source.
    pub tasks: usize,
    /// Actual seconds the source's tasks ran in-process.
    pub busy_secs: f64,
    /// Simulated busy seconds under the final plan.
    pub sim_busy_secs: f64,
    /// Simulated idle seconds: makespan minus busy.
    pub sim_idle_secs: f64,
}

/// One accepted merge, with sources resolved to names.
#[derive(Debug, Clone)]
pub struct MergeDecisionObs {
    pub source: String,
    /// Original task ids of the kept node.
    pub kept: Vec<usize>,
    /// Original task ids of the absorbed node.
    pub absorbed: Vec<usize>,
    pub cost_before_secs: f64,
    pub cost_after_secs: f64,
}

/// One node of the final per-source plan ordering.
#[derive(Debug, Clone)]
pub struct PlanStepObs {
    /// Node id in the merged cost graph.
    pub node: usize,
    pub eval_secs: f64,
    /// Simulated completion time of the node.
    pub completion_secs: f64,
    /// Original task ids contracted/merged into the node.
    pub tasks: Vec<usize>,
}

/// The ordered plan of one source.
#[derive(Debug, Clone)]
pub struct PlanSeqObs {
    pub source: String,
    pub steps: Vec<PlanStepObs>,
}

/// Version of the [`RunReport`] JSON schema. Bumped whenever fields are
/// added, removed, or change meaning, so downstream consumers of the
/// `BENCH_*.json` / report files can dispatch on it.
///
/// History: 1 = the PR-1 report (no version field); 2 = adds
/// `schema_version` and the `resilience` section; 3 = adds the `scheduler`
/// section and emits the fault seed as a lossless decimal string (a u64
/// above 2^53 is not representable as a JSON number); 4 = adds the
/// prepare/execute stage split (`prepare_secs`, `execute_secs`) and the
/// `cache` section with the plan cache's hit/miss/promotion counters;
/// 5 = adds the `shipcut` section (column-liveness pruning at ship
/// boundaries) and the per-task `ship_bytes` field; 6 = adds the
/// `integrity` section (the wrong-answer ledger: injected corruptions and
/// how each was masked or detected); 7 = adds the `server` section (the
/// overload-resilient server's admission/deadline/breaker ledgers and
/// latency percentiles); 8 = adds the per-task `wire_bytes` field
/// (dictionary-encoded wire size of the full output under columnar
/// storage) and re-bases the `shipcut` savings on it, so pruned and
/// unpruned shipments compare under the same encoding; 9 = adds the
/// `batching` section (chunked-shipment ledger: batch size, total batches,
/// peak resident shipment rows, estimated pipelining savings) and the
/// per-task `batches` field; 10 = adds the `incremental` section (delta
/// re-evaluation ledger: snapshot hit, tasks re-run vs reused, dirty
/// tables, rows spliced, document nodes reused vs rebuilt, and the scoped
/// constraint-check counts).
pub const SCHEMA_VERSION: u32 = 10;

/// Which stage of the prepared-plan split a phase belongs to: everything
/// argument-independent (compilation through estimate-based planning, plus
/// cache lookups and pre-pipeline parsing) is **prepare**; everything that
/// touches bound arguments (execution through the measured-cost simulation)
/// is **execute**.
pub fn phase_stage(name: &str) -> &'static str {
    match name {
        "parse"
        | "compile_constraints"
        | "decompose"
        | "unfold"
        | "graph_build"
        | "plan"
        | "shipcut"
        | "plan_cache" => "prepare",
        _ => "execute",
    }
}

/// The plan-cache section of the report: what the request saw on lookup and
/// the service-wide counters at report time. `Default` (all zero/false)
/// describes a run that never consulted a cache — the one-shot pipeline.
#[derive(Debug, Clone, Default)]
pub struct CacheObs {
    /// Whether a plan cache was consulted at all.
    pub enabled: bool,
    /// Whether the request's first plan lookup hit.
    pub hit: bool,
    /// Whether this request promoted the plan to a deeper unfolding depth
    /// (frontier-driven re-unfolding, §5.5).
    pub promoted: bool,
    /// Service-wide counters at report time.
    pub hits: u64,
    pub misses: u64,
    pub promotions: u64,
    pub evictions: u64,
    /// Plans resident / capacity of the cache.
    pub entries: usize,
    pub capacity: usize,
}

/// One injected fault as recorded in the report: where it hit and how the
/// retry/failover machinery resolved it.
#[derive(Debug, Clone)]
pub struct FaultEventObs {
    pub task: usize,
    pub label: String,
    pub source: String,
    pub attempt: usize,
    /// `transient`, `latency`, or `outage`.
    pub kind: String,
    /// `retried`, `timed_out`, `failed_over`, `surfaced`, or `absorbed`.
    pub outcome: String,
    pub backoff_secs: f64,
    pub stall_secs: f64,
}

/// The resilience section: what the fault model injected and what the
/// recovery machinery did about it. The counts satisfy
/// `injected = retried + timed_out + failed_over + surfaced` (absorbed
/// sub-timeout latency spikes are tracked separately).
#[derive(Debug, Clone, Default)]
pub struct ResilienceObs {
    /// Whether fault injection was configured for the run.
    pub enabled: bool,
    /// Seed of the fault stream (0 when disabled).
    pub seed: u64,
    /// Injected faults excluding absorbed spikes.
    pub injected: usize,
    pub retried: usize,
    pub timed_out: usize,
    pub failed_over: usize,
    pub surfaced: usize,
    pub absorbed_spikes: usize,
    /// `Schedule` re-runs on the surviving subgraph after outages.
    pub replans: usize,
    /// Total seconds slept in retry backoff.
    pub backoff_secs: f64,
    /// Total seconds stalled by injected latency (spikes and timeouts).
    pub stall_secs: f64,
    /// Events in canonical `(task, attempt)` order.
    pub events: Vec<FaultEventObs>,
}

/// One wrong-answer fault as recorded in the report: where it hit and how
/// the integrity defense resolved it.
#[derive(Debug, Clone)]
pub struct IntegrityEventObs {
    pub task: usize,
    pub label: String,
    pub source: String,
    /// Stored table the task reads (the wrong-answer fault coordinate).
    pub table: String,
    pub attempt: usize,
    /// `corrupt-row`, `table-outage`, or `stale-replica`.
    pub kind: String,
    /// The specific mutation for corruptions (`flip-key`, `null-column`,
    /// `duplicate-row`, `type-confuse`); equals `kind` otherwise.
    pub detail: String,
    /// `masked_by_retry`, `detected_by_guard`, `detected_by_constraint`,
    /// or `undetected`.
    pub outcome: String,
    /// The violated constraint the detection named (empty while
    /// undetected).
    pub constraint: String,
}

/// The integrity section: the wrong-answer ledger. The headline invariant
/// is `injected = masked_by_retry + detected_by_guard +
/// detected_by_constraint + undetected` with `undetected = 0` whenever the
/// defense is on — zero silent corruptions, asserted, not hoped.
#[derive(Debug, Clone, Default)]
pub struct IntegrityObs {
    /// Whether the integrity guard checks were on for the run.
    pub enabled: bool,
    /// Wrong-answer faults injected (ledger entries).
    pub injected: usize,
    /// Detected by the task-boundary guard and masked by a retry that
    /// re-fetched clean data.
    pub masked_by_retry: usize,
    /// Detected by the task-boundary guard on the final attempt (the run
    /// surfaced a structured `IntegrityViolation`).
    pub detected_by_guard: usize,
    /// Detected by the document-level key/inclusion constraint check.
    pub detected_by_constraint: usize,
    /// Corruptions that flowed through unseen (only the defense-off
    /// ablation should ever report a nonzero count).
    pub undetected: usize,
    /// Whether the ledger balances: every injection is accounted for.
    pub balanced: bool,
    /// Events in canonical `(task, attempt)` order.
    pub events: Vec<IntegrityEventObs>,
}

/// One dynamic-scheduler pick that ran at a different per-source position
/// than the static plan assigned it.
#[derive(Debug, Clone)]
pub struct PlanDeviationObs {
    pub task: usize,
    pub label: String,
    pub source: String,
    /// Position the static plan assigned the task at its source.
    pub planned_pos: usize,
    /// Position the task actually ran at.
    pub actual_pos: usize,
    /// The task's hybrid-level priority at pick time (zeroed in redacted
    /// reports — it is derived from wall-clock measurements).
    pub priority: f64,
}

/// The scheduler section: which scheduling mode the executor ran and how
/// the live schedule deviated from the static plan.
#[derive(Debug, Clone)]
pub struct SchedulerObs {
    /// `static` or `dynamic`.
    pub mode: String,
    /// Runtime picks the dynamic scheduler made (0 under static).
    pub picks: usize,
    /// Picks that deviated from the planned per-source order, sorted by
    /// `(source, actual_pos, task)` for a deterministic report.
    pub deviations: Vec<PlanDeviationObs>,
}

impl Default for SchedulerObs {
    fn default() -> Self {
        SchedulerObs {
            mode: "static".to_string(),
            picks: 0,
            deviations: Vec::new(),
        }
    }
}

/// The ship-cut section: what column-liveness pruning at ship boundaries
/// saved on the simulated wire. `Default` (disabled, all zero) describes a
/// run without ship-cut; when enabled, `shipped_cut_bytes` is what actually
/// entered the transfer model and `shipped_full_bytes` what the unpruned
/// relations would have cost.
#[derive(Debug, Clone, Default)]
pub struct ShipcutObs {
    /// Whether ship-cut liveness pruning was active for the run.
    pub enabled: bool,
    /// Total cross-source shipped bytes of the full (unpruned) outputs.
    pub shipped_full_bytes: f64,
    /// Total cross-source shipped bytes of the ship images.
    pub shipped_cut_bytes: f64,
    /// `shipped_full_bytes - shipped_cut_bytes`.
    pub saved_bytes: f64,
    /// Tasks whose ship image is strictly smaller than their full output.
    pub pruned_tasks: usize,
}

/// The batching section: the chunked-shipment ledger (see [`crate::batch`]).
/// `Default` (disabled, all zero) describes a materializing run; when
/// enabled, task outputs crossed the ship seam in `batch_rows`-row batches
/// and `peak_resident_rows` bounds how many shipment rows were ever in
/// flight at once.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchingObs {
    /// Whether chunked shipment was active for the run.
    pub enabled: bool,
    /// Configured batch size in rows (0 when disabled: the whole relation
    /// is one unbounded "batch").
    pub batch_rows: u64,
    /// Batches shipped across all tasks (equals the shipped-task count on
    /// a materializing run).
    pub total_batches: u64,
    /// High-water mark of shipment rows resident at once. Batching bounds
    /// this at the double-buffer window (≈ 2 × `batch_rows` per concurrent
    /// task) instead of the largest relation.
    pub peak_resident_rows: u64,
    /// Estimated seconds pipelining overlapped away on the simulated wire
    /// ([`crate::sim::NetworkModel::overlap_savings`]); zeroed in redacted
    /// reports — it derives from wall-clock-calibrated evaluation times.
    pub overlap_savings_secs: f64,
}

/// The incremental section: the delta re-evaluation ledger (see
/// [`crate::delta`]). `Default` (disabled, all zero) describes a run with
/// incremental re-evaluation off; `enabled` without `snapshot_hit`
/// describes the cold run that seeds the snapshot; a hit re-ran only
/// `tasks_rerun` of `tasks_total` tasks and spliced their outputs into the
/// cached store. Every field is deterministic (no wall-clock derivation),
/// so redacted reports keep the section verbatim.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IncrementalObs {
    /// Whether incremental re-evaluation was active for the request.
    pub enabled: bool,
    /// Whether a cached snapshot was found and spliced (false on the cold
    /// run that seeds the snapshot).
    pub snapshot_hit: bool,
    /// Tasks in the prepared plan's graph.
    pub tasks_total: usize,
    /// Tasks whose read-sets intersected the delta's dirty tables, plus
    /// their downstream closure — the subgraph that actually re-ran.
    pub tasks_rerun: usize,
    /// Tasks whose cached output relations were reused unchanged.
    pub tasks_reused: usize,
    /// Dirty `source.table` pairs the snapshot had accumulated since the
    /// previous run (sorted).
    pub dirty_tables: Vec<String>,
    /// Rows of re-run task outputs spliced into the cached store.
    pub rows_spliced: u64,
    /// Document nodes copied verbatim from the cached tree during retag.
    pub nodes_reused: usize,
    /// Document nodes rebuilt from the spliced store during retag.
    pub nodes_rebuilt: usize,
    /// Constraints whose element tags intersected the retag scope (the
    /// subset the scoped integrity check evaluated).
    pub constraints_scoped: usize,
    /// Constraints in the AIG's constraint set.
    pub constraints_total: usize,
}

/// The server section: what the overload-resilient request server saw over
/// one open-loop workload. `Default` (disabled, all zero) describes a
/// per-request report — the section only carries data on the server-level
/// summary report of [`crate::server::MediatorServer::run`].
///
/// Two ledger identities must hold (`balanced`):
/// `offered = admitted + rejected` and
/// `admitted = completed + deadline_exceeded + degraded + failed` —
/// every offered request terminates with exactly one structured outcome.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerObs {
    pub enabled: bool,
    /// Seed of the server's probe/arrival randomness.
    pub seed: u64,
    /// Requests that reached admission control.
    pub offered: u64,
    /// Requests admitted past admission control.
    pub admitted: u64,
    /// Requests rejected with [`crate::MediatorError::Overloaded`].
    pub rejected: u64,
    /// Rejections by scope: global queue bound, logical in-flight slots
    /// (only with a zero-length queue), and per-tenant quota.
    pub rejected_queue: u64,
    pub rejected_in_flight: u64,
    pub rejected_tenant: u64,
    /// Admitted requests that completed cleanly and in budget.
    pub completed: u64,
    /// Admitted requests that exceeded their deadline budget (in queue,
    /// mid-execution, or by finishing late).
    pub deadline_exceeded: u64,
    /// Admitted requests served degraded (skipped subtrees).
    pub degraded: u64,
    /// Admitted requests that surfaced an execution error.
    pub failed: u64,
    /// Circuit-breaker lifecycle counts.
    pub breaker_trips: u64,
    pub breaker_probes: u64,
    pub breaker_closes: u64,
    /// High-water marks of the queue and the in-flight slots.
    pub max_queue_depth: usize,
    pub max_in_flight: usize,
    /// Latency percentiles (logical seconds, arrival to termination) over
    /// every admitted request.
    pub p50_secs: f64,
    pub p95_secs: f64,
    pub p99_secs: f64,
    /// Whether both ledger identities hold.
    pub balanced: bool,
}

/// Size snapshot of one catalog table, for checking per-task byte counts
/// against the actual relation sizes.
#[derive(Debug, Clone)]
pub struct CatalogTableObs {
    pub source: String,
    pub table: String,
    pub rows: usize,
    pub bytes: usize,
}

/// The complete observability record of one mediator run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Schema version of the report (see [`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Wall-clock seconds of the whole pipeline run.
    pub total_secs: f64,
    /// Seconds spent in argument-independent **prepare** phases (see
    /// [`phase_stage`]) — the cost a plan-cache hit amortizes away.
    pub prepare_secs: f64,
    /// Seconds spent in argument-bound **execute** phases.
    pub execute_secs: f64,
    /// The unfolding depth that sufficed.
    pub depth: usize,
    /// How many unfold→execute rounds the frontier loop took.
    pub unfold_rounds: usize,
    /// Whether the parallel (per-source worker) executor ran the final round.
    pub parallel_exec: bool,
    /// Chronological phase timers covering the run.
    pub phases: Vec<PhaseSample>,
    pub tasks: Vec<TaskObs>,
    pub sources: Vec<SourceObs>,
    pub merge_decisions: Vec<MergeDecisionObs>,
    /// Final per-source plan ordering (after merging when enabled).
    pub plan: Vec<PlanSeqObs>,
    pub catalog: Vec<CatalogTableObs>,
    /// Actual seconds summed over all tasks.
    pub exec_wall_secs: f64,
    /// Simulated response time without merging.
    pub sim_response_unmerged_secs: f64,
    /// Simulated response time of the final (possibly merged) plan.
    pub sim_response_merged_secs: f64,
    pub merges: usize,
    /// What the fault-injection and recovery layer did during execution.
    pub resilience: ResilienceObs,
    /// The wrong-answer ledger: injected corruptions and how each was
    /// masked or detected.
    pub integrity: IntegrityObs,
    /// Which scheduling mode ran and how the live schedule deviated from
    /// the static plan.
    pub scheduler: SchedulerObs,
    /// What the plan cache saw for this request (default when the one-shot
    /// pipeline ran without a cache).
    pub cache: CacheObs,
    /// What ship-cut column pruning saved on the simulated wire.
    pub shipcut: ShipcutObs,
    /// The chunked-shipment ledger (default on materializing runs).
    pub batching: BatchingObs,
    /// The delta re-evaluation ledger (default on non-incremental runs).
    pub incremental: IncrementalObs,
    /// The overload-resilient server's ledgers (default on per-request
    /// reports; populated on server-level summary reports).
    pub server: ServerObs,
}

/// Everything the report builder needs from the pipeline.
pub(crate) struct ReportInputs<'a> {
    pub graph: &'a TaskGraph,
    pub catalog: &'a Catalog,
    pub measured: &'a [Measured],
    pub costs: &'a [TaskCost],
    pub baseline: &'a MergeOutcome,
    pub merged: &'a MergeOutcome,
    pub net: &'a NetworkModel,
    pub depth: usize,
    pub unfold_rounds: usize,
    pub parallel_exec: bool,
    pub resilience: &'a ResilienceLog,
    /// The wrong-answer ledger of the final execution round.
    pub integrity: &'a IntegrityLog,
    /// Whether the integrity guard checks were on.
    pub check_integrity: bool,
    /// Seed of the fault stream; None when fault injection was disabled.
    pub fault_seed: Option<u64>,
    /// What the scheduler did during the final execution round.
    pub sched: &'a crate::exec::SchedLog,
    /// Plan-cache observability for the request (default when no cache).
    pub cache: CacheObs,
    /// Whether ship-cut liveness pruning was active during execution.
    pub shipcut_enabled: bool,
    /// The chunked-shipment ledger of the final execution round.
    pub batch: crate::batch::BatchLog,
    /// The delta re-evaluation ledger (default on non-incremental runs).
    pub incremental: IncrementalObs,
}

fn kind_tag(kind: &TaskKind) -> &'static str {
    match kind {
        TaskKind::Root => "root",
        TaskKind::Gen { .. } => "gen",
        TaskKind::InhSetQuery { .. } => "inh_set_query",
        TaskKind::Assemble { .. } => "assemble",
        TaskKind::SynAgg { .. } => "syn_agg",
        TaskKind::Cond { .. } => "cond",
        TaskKind::BranchMat { .. } => "branch_mat",
        TaskKind::Guard { .. } => "guard",
    }
}

/// Bytes each task ships over the simulated network: its measured ship
/// image (column-pruned under ship-cut, the full output otherwise), counted
/// once per distinct consumer at a different source (the §5.2 transfer
/// model; same-source reads are local).
pub fn shipped_bytes(graph: &TaskGraph, measured: &[Measured]) -> Vec<f64> {
    shipped_bytes_by(graph, measured, |m| m.ship_bytes)
}

/// [`shipped_bytes`] with a caller-chosen size accessor, so the report can
/// put the pruned totals side by side with what the full relations would
/// have cost on the wire.
fn shipped_bytes_by(
    graph: &TaskGraph,
    measured: &[Measured],
    size: impl Fn(&Measured) -> f64,
) -> Vec<f64> {
    let mut shipped = vec![0.0f64; graph.tasks.len()];
    for task in &graph.tasks {
        let mut seen = HashSet::new();
        for (dep, _) in &task.deps {
            if seen.insert(*dep) && graph.tasks[*dep].source != task.source {
                shipped[*dep] += size(&measured[*dep]);
            }
        }
    }
    shipped
}

/// Per-source simulated busy seconds under `plan`.
fn sim_busy(outcome: &MergeOutcome) -> impl Fn(SourceId) -> f64 + '_ {
    move |source| {
        outcome
            .graph
            .nodes
            .iter()
            .filter(|n| n.source == source)
            .map(|n| n.eval_secs)
            .sum()
    }
}

pub(crate) fn build_report(inputs: ReportInputs<'_>, phases: Phases, total_secs: f64) -> RunReport {
    let ReportInputs {
        graph,
        catalog,
        measured,
        costs,
        baseline,
        merged,
        net,
        depth,
        unfold_rounds,
        parallel_exec,
        resilience,
        integrity,
        check_integrity,
        fault_seed,
        sched,
        cache,
        shipcut_enabled,
        batch,
        incremental,
    } = inputs;

    let shipped = shipped_bytes(graph, measured);
    let shipped_full = shipped_bytes_by(graph, measured, |m| m.wire_bytes);
    let shipcut = ShipcutObs {
        enabled: shipcut_enabled,
        shipped_full_bytes: shipped_full.iter().fold(0.0, |a, b| a + b),
        shipped_cut_bytes: shipped.iter().fold(0.0, |a, b| a + b),
        saved_bytes: shipped_full
            .iter()
            .zip(&shipped)
            .fold(0.0, |a, (f, c)| a + (f - c)),
        pruned_tasks: measured
            .iter()
            .filter(|m| m.ship_bytes < m.wire_bytes)
            .count(),
    };
    let batching = {
        // Pipelining overlaps simulated wire time with simulated (calibrated)
        // evaluation time; a single-hop bulk estimate is enough for the
        // headline number — per-edge routing detail lives in the plan section.
        let ship_secs = if net.bandwidth_bytes_per_sec.is_finite() {
            shipped.iter().fold(0.0, |a, b| a + b) / net.bandwidth_bytes_per_sec
        } else {
            0.0
        };
        let eval_secs = costs.iter().map(|c| c.eval_secs).fold(0.0, |a, s| a + s);
        BatchingObs {
            enabled: batch.enabled,
            batch_rows: if batch.enabled {
                batch.batch_rows as u64
            } else {
                0
            },
            total_batches: batch.total_batches,
            peak_resident_rows: batch.peak_resident_rows,
            overlap_savings_secs: if batch.enabled {
                net.overlap_savings(ship_secs, eval_secs, batch.total_batches)
            } else {
                0.0
            },
        }
    };
    let tasks: Vec<TaskObs> = graph
        .tasks
        .iter()
        .enumerate()
        .map(|(id, task)| TaskObs {
            id,
            label: task.label.clone(),
            kind: kind_tag(&task.kind).to_string(),
            source: catalog.source(task.source).name().to_string(),
            source_id: task.source.0,
            in_rows: measured[id].in_rows,
            out_rows: measured[id].out_rows,
            out_bytes: measured[id].out_bytes,
            wire_bytes: measured[id].wire_bytes,
            ship_bytes: measured[id].ship_bytes,
            shipped_bytes: shipped[id],
            batches: measured[id].batches,
            secs: measured[id].secs,
            wait_secs: measured[id].wait_secs,
            start_secs: measured[id].start_secs,
            sim_eval_secs: costs[id].eval_secs,
        })
        .collect();

    let busy_of = sim_busy(merged);
    let mut sources: Vec<SourceObs> = Vec::new();
    let mut source_ids: Vec<SourceId> = catalog.source_ids().collect();
    source_ids.sort();
    for sid in source_ids {
        let task_count = graph.tasks.iter().filter(|t| t.source == sid).count();
        if task_count == 0 && !sid.is_mediator() {
            continue;
        }
        let busy_secs: f64 = graph
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.source == sid)
            .map(|(id, _)| measured[id].secs)
            .sum();
        let sim_busy_secs = busy_of(sid);
        sources.push(SourceObs {
            name: catalog.source(sid).name().to_string(),
            id: sid.0,
            tasks: task_count,
            busy_secs,
            sim_busy_secs,
            sim_idle_secs: (merged.response_secs - sim_busy_secs).max(0.0),
        });
    }

    let merge_decisions = merged
        .decisions
        .iter()
        .map(|d| MergeDecisionObs {
            source: catalog.source(d.source).name().to_string(),
            kept: d.kept.clone(),
            absorbed: d.absorbed.clone(),
            cost_before_secs: d.cost_before_secs,
            cost_after_secs: d.cost_after_secs,
        })
        .collect();

    let plan = plan_obs(&merged.plan, merged, net, catalog);

    let mut catalog_obs = Vec::new();
    for sid in catalog.source_ids() {
        let db = catalog.source(sid);
        for table in db.tables() {
            catalog_obs.push(CatalogTableObs {
                source: db.name().to_string(),
                table: table.name().to_string(),
                rows: table.len(),
                bytes: table.byte_size(),
            });
        }
    }
    catalog_obs.sort_by(|a, b| (&a.source, &a.table).cmp(&(&b.source, &b.table)));

    let events: Vec<FaultEventObs> = resilience
        .sorted_events()
        .into_iter()
        .map(|e| FaultEventObs {
            task: e.task,
            label: e.label,
            source: e.source,
            attempt: e.attempt,
            kind: e.kind.name().to_string(),
            outcome: e.outcome.name().to_string(),
            backoff_secs: e.backoff_secs,
            stall_secs: e.stall_secs,
        })
        .collect();
    let resilience_obs = ResilienceObs {
        enabled: fault_seed.is_some(),
        seed: fault_seed.unwrap_or(0),
        injected: resilience.injected(),
        retried: resilience.count(FaultOutcome::Retried),
        timed_out: resilience.count(FaultOutcome::TimedOut),
        failed_over: resilience.count(FaultOutcome::FailedOver),
        surfaced: resilience.count(FaultOutcome::Surfaced),
        absorbed_spikes: resilience.count(FaultOutcome::Absorbed),
        replans: resilience.replans,
        // fold, not sum: the empty f64 sum is -0.0, which leaks a minus
        // sign into formatted output.
        backoff_secs: resilience
            .events
            .iter()
            .fold(0.0, |a, e| a + e.backoff_secs),
        stall_secs: resilience.events.iter().fold(0.0, |a, e| a + e.stall_secs),
        events,
    };

    let integrity_events: Vec<IntegrityEventObs> = integrity
        .sorted_events()
        .into_iter()
        .map(|e| IntegrityEventObs {
            task: e.task,
            label: e.label,
            source: e.source,
            table: e.table,
            attempt: e.attempt,
            kind: e.kind.name().to_string(),
            detail: e.kind.detail().to_string(),
            outcome: e.outcome.name().to_string(),
            constraint: e.constraint,
        })
        .collect();
    let integrity_obs = IntegrityObs {
        enabled: check_integrity,
        injected: integrity.injected(),
        masked_by_retry: integrity.count(IntegrityOutcome::MaskedByRetry),
        detected_by_guard: integrity.count(IntegrityOutcome::DetectedByGuard),
        detected_by_constraint: integrity.count(IntegrityOutcome::DetectedByConstraint),
        undetected: integrity.undetected(),
        balanced: integrity.balanced(),
        events: integrity_events,
    };

    let mut deviations: Vec<PlanDeviationObs> = sched
        .deviations()
        .into_iter()
        .map(|p| PlanDeviationObs {
            task: p.task,
            label: graph.tasks[p.task].label.clone(),
            source: catalog.source(p.source).name().to_string(),
            planned_pos: p.planned_pos,
            actual_pos: p.actual_pos,
            priority: p.priority,
        })
        .collect();
    deviations
        .sort_by(|a, b| (&a.source, a.actual_pos, a.task).cmp(&(&b.source, b.actual_pos, b.task)));
    let scheduler = SchedulerObs {
        mode: if sched.dynamic { "dynamic" } else { "static" }.to_string(),
        picks: sched.picks.len(),
        deviations,
    };

    let stage_secs = |stage: &str| {
        phases
            .samples()
            .iter()
            .filter(|p| phase_stage(&p.name) == stage)
            .map(|p| p.secs)
            .fold(0.0, |a, s| a + s)
    };
    let prepare_secs = stage_secs("prepare");
    let execute_secs = stage_secs("execute");

    RunReport {
        schema_version: SCHEMA_VERSION,
        total_secs,
        prepare_secs,
        execute_secs,
        depth,
        unfold_rounds,
        parallel_exec,
        phases: phases.into_samples(),
        tasks,
        sources,
        merge_decisions,
        plan,
        catalog: catalog_obs,
        exec_wall_secs: measured.iter().map(|m| m.secs).sum(),
        sim_response_unmerged_secs: baseline.response_secs,
        sim_response_merged_secs: merged.response_secs,
        merges: merged.merges,
        resilience: resilience_obs,
        integrity: integrity_obs,
        scheduler,
        cache,
        shipcut,
        batching,
        incremental,
        server: ServerObs::default(),
    }
}

fn plan_obs(
    plan: &Plan,
    outcome: &MergeOutcome,
    net: &NetworkModel,
    catalog: &Catalog,
) -> Vec<PlanSeqObs> {
    let done = completion_times(&outcome.graph, plan, net);
    let mut sources: Vec<SourceId> = plan.per_source.keys().copied().collect();
    sources.sort();
    sources
        .iter()
        .filter(|s| !plan.per_source[s].is_empty())
        .map(|&source| PlanSeqObs {
            source: catalog.source(source).name().to_string(),
            steps: plan.per_source[&source]
                .iter()
                .map(|&node| PlanStepObs {
                    node,
                    eval_secs: outcome.graph.nodes[node].eval_secs,
                    completion_secs: done[node],
                    tasks: outcome.graph.nodes[node].members.clone(),
                })
                .collect(),
        })
        .collect()
}

impl RunReport {
    /// A server-level summary report: every per-request section at its
    /// default and the `server` section carrying the ledger. The server's
    /// clock is logical (simulated arrivals), so there are no wall-clock
    /// fields to fill.
    pub fn server_summary(server: ServerObs) -> RunReport {
        RunReport {
            schema_version: SCHEMA_VERSION,
            total_secs: 0.0,
            prepare_secs: 0.0,
            execute_secs: 0.0,
            depth: 0,
            unfold_rounds: 0,
            parallel_exec: false,
            phases: vec![],
            tasks: vec![],
            sources: vec![],
            merge_decisions: vec![],
            plan: vec![],
            catalog: vec![],
            exec_wall_secs: 0.0,
            sim_response_unmerged_secs: 0.0,
            sim_response_merged_secs: 0.0,
            merges: 0,
            resilience: ResilienceObs::default(),
            integrity: IntegrityObs::default(),
            scheduler: SchedulerObs::default(),
            cache: CacheObs::default(),
            shipcut: ShipcutObs::default(),
            batching: BatchingObs::default(),
            incremental: IncrementalObs::default(),
            server,
        }
    }

    /// Sum of all phase timers (should be within a few percent of
    /// `total_secs`: the pipeline times every phase, leaving only loop
    /// control unattributed).
    pub fn phase_secs_total(&self) -> f64 {
        self.phases.iter().map(|p| p.secs).sum()
    }

    /// Prepends an externally-timed phase (e.g. AIG parsing, which happens
    /// before the pipeline is entered) and extends the total accordingly.
    pub fn prepend_phase(&mut self, name: &str, secs: f64) {
        for phase in &mut self.phases {
            phase.first_start_secs += secs;
        }
        self.phases.insert(
            0,
            PhaseSample {
                name: name.to_string(),
                calls: 1,
                secs,
                first_start_secs: 0.0,
            },
        );
        self.total_secs += secs;
        if phase_stage(name) == "prepare" {
            self.prepare_secs += secs;
        } else {
            self.execute_secs += secs;
        }
    }

    /// A copy with every wall-clock measurement zeroed, leaving only the
    /// deterministic structure (row/byte counts, simulated costs, plan
    /// orderings, merge decisions). Used by the golden-file tests.
    pub fn redacted(&self) -> RunReport {
        let mut report = self.clone();
        report.total_secs = 0.0;
        report.prepare_secs = 0.0;
        report.execute_secs = 0.0;
        report.exec_wall_secs = 0.0;
        for phase in &mut report.phases {
            phase.secs = 0.0;
            phase.first_start_secs = 0.0;
        }
        for task in &mut report.tasks {
            task.secs = 0.0;
            task.wait_secs = 0.0;
            task.start_secs = 0.0;
        }
        for source in &mut report.sources {
            source.busy_secs = 0.0;
        }
        report.resilience.backoff_secs = 0.0;
        report.resilience.stall_secs = 0.0;
        for event in &mut report.resilience.events {
            event.backoff_secs = 0.0;
            event.stall_secs = 0.0;
        }
        for deviation in &mut report.scheduler.deviations {
            deviation.priority = 0.0;
        }
        // The pipelining estimate folds in calibrated (wall-clock-derived)
        // evaluation times; the batch/row counts themselves are deterministic
        // and stay.
        report.batching.overlap_savings_secs = 0.0;
        report
    }

    /// Serializes the report to a [`Json`] value (ordered fields: the
    /// output is byte-stable for a given report).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(self.schema_version as f64)),
            ("total_secs", Json::num(self.total_secs)),
            ("prepare_secs", Json::num(self.prepare_secs)),
            ("execute_secs", Json::num(self.execute_secs)),
            ("depth", Json::num(self.depth as f64)),
            ("unfold_rounds", Json::num(self.unfold_rounds as f64)),
            ("parallel_exec", Json::Bool(self.parallel_exec)),
            ("exec_wall_secs", Json::num(self.exec_wall_secs)),
            (
                "sim",
                Json::obj(vec![
                    (
                        "response_unmerged_secs",
                        Json::num(self.sim_response_unmerged_secs),
                    ),
                    (
                        "response_merged_secs",
                        Json::num(self.sim_response_merged_secs),
                    ),
                    ("merges", Json::num(self.merges as f64)),
                ]),
            ),
            (
                "shipcut",
                Json::obj(vec![
                    ("enabled", Json::Bool(self.shipcut.enabled)),
                    (
                        "shipped_full_bytes",
                        Json::num(self.shipcut.shipped_full_bytes),
                    ),
                    (
                        "shipped_cut_bytes",
                        Json::num(self.shipcut.shipped_cut_bytes),
                    ),
                    ("saved_bytes", Json::num(self.shipcut.saved_bytes)),
                    ("pruned_tasks", Json::num(self.shipcut.pruned_tasks as f64)),
                ]),
            ),
            (
                "batching",
                Json::obj(vec![
                    ("enabled", Json::Bool(self.batching.enabled)),
                    ("batch_rows", Json::num(self.batching.batch_rows as f64)),
                    (
                        "total_batches",
                        Json::num(self.batching.total_batches as f64),
                    ),
                    (
                        "peak_resident_rows",
                        Json::num(self.batching.peak_resident_rows as f64),
                    ),
                    (
                        "overlap_savings_secs",
                        Json::num(self.batching.overlap_savings_secs),
                    ),
                ]),
            ),
            (
                "incremental",
                Json::obj(vec![
                    ("enabled", Json::Bool(self.incremental.enabled)),
                    ("snapshot_hit", Json::Bool(self.incremental.snapshot_hit)),
                    (
                        "tasks_total",
                        Json::num(self.incremental.tasks_total as f64),
                    ),
                    (
                        "tasks_rerun",
                        Json::num(self.incremental.tasks_rerun as f64),
                    ),
                    (
                        "tasks_reused",
                        Json::num(self.incremental.tasks_reused as f64),
                    ),
                    (
                        "dirty_tables",
                        Json::Arr(
                            self.incremental
                                .dirty_tables
                                .iter()
                                .map(Json::str)
                                .collect(),
                        ),
                    ),
                    (
                        "rows_spliced",
                        Json::num(self.incremental.rows_spliced as f64),
                    ),
                    (
                        "nodes_reused",
                        Json::num(self.incremental.nodes_reused as f64),
                    ),
                    (
                        "nodes_rebuilt",
                        Json::num(self.incremental.nodes_rebuilt as f64),
                    ),
                    (
                        "constraints_scoped",
                        Json::num(self.incremental.constraints_scoped as f64),
                    ),
                    (
                        "constraints_total",
                        Json::num(self.incremental.constraints_total as f64),
                    ),
                ]),
            ),
            (
                "resilience",
                Json::obj(vec![
                    ("enabled", Json::Bool(self.resilience.enabled)),
                    // A u64 seed above 2^53 would silently lose precision
                    // as a JSON number; emit it as a decimal string.
                    ("seed", Json::str(self.resilience.seed.to_string())),
                    ("injected", Json::num(self.resilience.injected as f64)),
                    ("retried", Json::num(self.resilience.retried as f64)),
                    ("timed_out", Json::num(self.resilience.timed_out as f64)),
                    ("failed_over", Json::num(self.resilience.failed_over as f64)),
                    ("surfaced", Json::num(self.resilience.surfaced as f64)),
                    (
                        "absorbed_spikes",
                        Json::num(self.resilience.absorbed_spikes as f64),
                    ),
                    ("replans", Json::num(self.resilience.replans as f64)),
                    ("backoff_secs", Json::num(self.resilience.backoff_secs)),
                    ("stall_secs", Json::num(self.resilience.stall_secs)),
                    (
                        "events",
                        Json::Arr(
                            self.resilience
                                .events
                                .iter()
                                .map(|e| {
                                    Json::obj(vec![
                                        ("task", Json::num(e.task as f64)),
                                        ("label", Json::str(&e.label)),
                                        ("source", Json::str(&e.source)),
                                        ("attempt", Json::num(e.attempt as f64)),
                                        ("kind", Json::str(&e.kind)),
                                        ("outcome", Json::str(&e.outcome)),
                                        ("backoff_secs", Json::num(e.backoff_secs)),
                                        ("stall_secs", Json::num(e.stall_secs)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "integrity",
                Json::obj(vec![
                    ("enabled", Json::Bool(self.integrity.enabled)),
                    ("injected", Json::num(self.integrity.injected as f64)),
                    (
                        "masked_by_retry",
                        Json::num(self.integrity.masked_by_retry as f64),
                    ),
                    (
                        "detected_by_guard",
                        Json::num(self.integrity.detected_by_guard as f64),
                    ),
                    (
                        "detected_by_constraint",
                        Json::num(self.integrity.detected_by_constraint as f64),
                    ),
                    ("undetected", Json::num(self.integrity.undetected as f64)),
                    ("balanced", Json::Bool(self.integrity.balanced)),
                    (
                        "events",
                        Json::Arr(
                            self.integrity
                                .events
                                .iter()
                                .map(|e| {
                                    Json::obj(vec![
                                        ("task", Json::num(e.task as f64)),
                                        ("label", Json::str(&e.label)),
                                        ("source", Json::str(&e.source)),
                                        ("table", Json::str(&e.table)),
                                        ("attempt", Json::num(e.attempt as f64)),
                                        ("kind", Json::str(&e.kind)),
                                        ("detail", Json::str(&e.detail)),
                                        ("outcome", Json::str(&e.outcome)),
                                        ("constraint", Json::str(&e.constraint)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "scheduler",
                Json::obj(vec![
                    ("mode", Json::str(&self.scheduler.mode)),
                    ("picks", Json::num(self.scheduler.picks as f64)),
                    (
                        "deviations",
                        Json::Arr(
                            self.scheduler
                                .deviations
                                .iter()
                                .map(|d| {
                                    Json::obj(vec![
                                        ("task", Json::num(d.task as f64)),
                                        ("label", Json::str(&d.label)),
                                        ("source", Json::str(&d.source)),
                                        ("planned_pos", Json::num(d.planned_pos as f64)),
                                        ("actual_pos", Json::num(d.actual_pos as f64)),
                                        ("priority", Json::num(d.priority)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("enabled", Json::Bool(self.cache.enabled)),
                    ("hit", Json::Bool(self.cache.hit)),
                    ("promoted", Json::Bool(self.cache.promoted)),
                    ("hits", Json::num(self.cache.hits as f64)),
                    ("misses", Json::num(self.cache.misses as f64)),
                    ("promotions", Json::num(self.cache.promotions as f64)),
                    ("evictions", Json::num(self.cache.evictions as f64)),
                    ("entries", Json::num(self.cache.entries as f64)),
                    ("capacity", Json::num(self.cache.capacity as f64)),
                ]),
            ),
            (
                "server",
                Json::obj(vec![
                    ("enabled", Json::Bool(self.server.enabled)),
                    // Same lossless-decimal treatment as the fault seed.
                    ("seed", Json::str(self.server.seed.to_string())),
                    ("offered", Json::num(self.server.offered as f64)),
                    ("admitted", Json::num(self.server.admitted as f64)),
                    ("rejected", Json::num(self.server.rejected as f64)),
                    (
                        "rejected_queue",
                        Json::num(self.server.rejected_queue as f64),
                    ),
                    (
                        "rejected_in_flight",
                        Json::num(self.server.rejected_in_flight as f64),
                    ),
                    (
                        "rejected_tenant",
                        Json::num(self.server.rejected_tenant as f64),
                    ),
                    ("completed", Json::num(self.server.completed as f64)),
                    (
                        "deadline_exceeded",
                        Json::num(self.server.deadline_exceeded as f64),
                    ),
                    ("degraded", Json::num(self.server.degraded as f64)),
                    ("failed", Json::num(self.server.failed as f64)),
                    ("breaker_trips", Json::num(self.server.breaker_trips as f64)),
                    (
                        "breaker_probes",
                        Json::num(self.server.breaker_probes as f64),
                    ),
                    (
                        "breaker_closes",
                        Json::num(self.server.breaker_closes as f64),
                    ),
                    (
                        "max_queue_depth",
                        Json::num(self.server.max_queue_depth as f64),
                    ),
                    ("max_in_flight", Json::num(self.server.max_in_flight as f64)),
                    ("p50_secs", Json::num(self.server.p50_secs)),
                    ("p95_secs", Json::num(self.server.p95_secs)),
                    ("p99_secs", Json::num(self.server.p99_secs)),
                    ("balanced", Json::Bool(self.server.balanced)),
                ]),
            ),
            (
                "phases",
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("name", Json::str(&p.name)),
                                ("calls", Json::num(p.calls as f64)),
                                ("start_secs", Json::num(p.first_start_secs)),
                                ("secs", Json::num(p.secs)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "tasks",
                Json::Arr(
                    self.tasks
                        .iter()
                        .map(|t| {
                            Json::obj(vec![
                                ("id", Json::num(t.id as f64)),
                                ("label", Json::str(&t.label)),
                                ("kind", Json::str(&t.kind)),
                                ("source", Json::str(&t.source)),
                                ("source_id", Json::num(t.source_id as f64)),
                                ("in_rows", Json::num(t.in_rows)),
                                ("out_rows", Json::num(t.out_rows)),
                                ("out_bytes", Json::num(t.out_bytes)),
                                ("wire_bytes", Json::num(t.wire_bytes)),
                                ("ship_bytes", Json::num(t.ship_bytes)),
                                ("shipped_bytes", Json::num(t.shipped_bytes)),
                                ("batches", Json::num(t.batches as f64)),
                                ("secs", Json::num(t.secs)),
                                ("wait_secs", Json::num(t.wait_secs)),
                                ("start_secs", Json::num(t.start_secs)),
                                ("sim_eval_secs", Json::num(t.sim_eval_secs)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "sources",
                Json::Arr(
                    self.sources
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("name", Json::str(&s.name)),
                                ("id", Json::num(s.id as f64)),
                                ("tasks", Json::num(s.tasks as f64)),
                                ("busy_secs", Json::num(s.busy_secs)),
                                ("sim_busy_secs", Json::num(s.sim_busy_secs)),
                                ("sim_idle_secs", Json::num(s.sim_idle_secs)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "merge_decisions",
                Json::Arr(
                    self.merge_decisions
                        .iter()
                        .map(|d| {
                            Json::obj(vec![
                                ("source", Json::str(&d.source)),
                                ("kept", ids(&d.kept)),
                                ("absorbed", ids(&d.absorbed)),
                                ("cost_before_secs", Json::num(d.cost_before_secs)),
                                ("cost_after_secs", Json::num(d.cost_after_secs)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "plan",
                Json::Arr(
                    self.plan
                        .iter()
                        .map(|seq| {
                            Json::obj(vec![
                                ("source", Json::str(&seq.source)),
                                (
                                    "steps",
                                    Json::Arr(
                                        seq.steps
                                            .iter()
                                            .map(|s| {
                                                Json::obj(vec![
                                                    ("node", Json::num(s.node as f64)),
                                                    ("eval_secs", Json::num(s.eval_secs)),
                                                    (
                                                        "completion_secs",
                                                        Json::num(s.completion_secs),
                                                    ),
                                                    ("tasks", ids(&s.tasks)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "catalog",
                Json::Arr(
                    self.catalog
                        .iter()
                        .map(|t| {
                            Json::obj(vec![
                                ("source", Json::str(&t.source)),
                                ("table", Json::str(&t.table)),
                                ("rows", Json::num(t.rows as f64)),
                                ("bytes", Json::num(t.bytes as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn ids(list: &[usize]) -> Json {
    Json::Arr(list.iter().map(|&i| Json::num(i as f64)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_across_calls() {
        let mut phases = Phases::new();
        phases.record("unfold", 0.0, 0.5);
        phases.record("execute", 0.5, 1.0);
        phases.record("unfold", 1.5, 0.25);
        let samples = phases.into_samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].name, "unfold");
        assert_eq!(samples[0].calls, 2);
        assert!((samples[0].secs - 0.75).abs() < 1e-12);
        assert_eq!(samples[0].first_start_secs, 0.0);
        assert_eq!(samples[1].calls, 1);
    }

    #[test]
    fn time_charges_wall_clock() {
        let mut phases = Phases::new();
        let v = phases.time("spin", || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        let samples = phases.into_samples();
        assert!(samples[0].secs >= 0.004, "{}", samples[0].secs);
    }

    #[test]
    fn prepend_phase_shifts_offsets() {
        let mut phases = Phases::new();
        phases.record("compile_constraints", 0.0, 0.1);
        let mut report = RunReport {
            schema_version: SCHEMA_VERSION,
            total_secs: 0.1,
            prepare_secs: 0.1,
            execute_secs: 0.0,
            depth: 1,
            unfold_rounds: 1,
            parallel_exec: false,
            phases: phases.into_samples(),
            tasks: vec![],
            sources: vec![],
            merge_decisions: vec![],
            plan: vec![],
            catalog: vec![],
            exec_wall_secs: 0.0,
            sim_response_unmerged_secs: 0.0,
            sim_response_merged_secs: 0.0,
            merges: 0,
            resilience: ResilienceObs::default(),
            integrity: IntegrityObs::default(),
            scheduler: SchedulerObs::default(),
            cache: CacheObs::default(),
            shipcut: ShipcutObs::default(),
            batching: BatchingObs::default(),
            incremental: IncrementalObs::default(),
            server: ServerObs::default(),
        };
        report.prepend_phase("parse", 0.05);
        assert_eq!(report.phases[0].name, "parse");
        assert!((report.phases[1].first_start_secs - 0.05).abs() < 1e-12);
        assert!((report.total_secs - 0.15).abs() < 1e-12);
        assert!((report.phase_secs_total() - 0.15).abs() < 1e-12);
        // Parsing happens before the pipeline: it counts as prepare time.
        assert!((report.prepare_secs - 0.15).abs() < 1e-12);
        assert_eq!(report.execute_secs, 0.0);
    }

    #[test]
    fn fault_seed_survives_json_above_f64_precision() {
        // u64::MAX has no exact f64 representation; a numeric JSON field
        // would silently round it. The report emits the seed as a decimal
        // string instead, so the exact value round-trips.
        let mut report = RunReport {
            schema_version: SCHEMA_VERSION,
            total_secs: 0.0,
            prepare_secs: 0.0,
            execute_secs: 0.0,
            depth: 1,
            unfold_rounds: 1,
            parallel_exec: false,
            phases: vec![],
            tasks: vec![],
            sources: vec![],
            merge_decisions: vec![],
            plan: vec![],
            catalog: vec![],
            exec_wall_secs: 0.0,
            sim_response_unmerged_secs: 0.0,
            sim_response_merged_secs: 0.0,
            merges: 0,
            resilience: ResilienceObs::default(),
            integrity: IntegrityObs::default(),
            scheduler: SchedulerObs::default(),
            cache: CacheObs::default(),
            shipcut: ShipcutObs::default(),
            batching: BatchingObs::default(),
            incremental: IncrementalObs::default(),
            server: ServerObs::default(),
        };
        report.resilience.enabled = true;
        report.resilience.seed = u64::MAX;
        let json = report.to_json().to_pretty();
        assert!(
            json.contains("\"seed\": \"18446744073709551615\""),
            "{json}"
        );
        assert!(
            !json.contains("18446744073709552000"),
            "seed was rounded through f64"
        );
    }
}
