//! The query dependency graph (paper §5.1) and set-oriented rewriting.
//!
//! The mediator evaluates a (specialized, unfolded) AIG by building a DAG of
//! **tasks**: set-oriented source queries plus mediator-side operations
//! (instance-table assembly, synthesized-attribute aggregation — the
//! Q5/Q6-style mediator nodes of Fig. 7 —, choice resolution, and guard
//! checks). Each parameterized rule query is rewritten to take *entire
//! temporary tables* instead of a tuple at a time: the paper's
//! transformation of `Q2(v)` into `Q2(Tpatient)` (§5.1), with the parent
//! row id taking the role of the key path that "uniquely identifies the
//! position of a node in the XML tree".
//!
//! Materialization policy (this is the paper's copy elimination, §4, applied
//! by construction): instance tables exist only for the root, starred
//! children, and choice branches. All other elements are *virtual* — their
//! inherited attributes resolve through copy chains into the nearest
//! materialized ancestor's table, so no query or table is spent on them.

use crate::error::MediatorError;
use aig_core::copyelim::{resolve_scalar, ResolvedScalar};
use aig_core::spec::{
    Aig, ElemIdx, FieldRule, Generator, ParamSource, Prod, QueryRule, SetExpr, ValueExpr,
};
use aig_relstore::{Catalog, SourceId, Value};
use aig_sql::cost::{estimate, CatalogStats, CostEstimate, CostModel, ParamStats};
use aig_sql::{FromItem, Pred, QualCol, Query, Scalar, SelectItem, SetRef};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// An occurrence of an element in the unfolded AIG: the nearest materialized
/// ancestor (`base`) plus the chain of production-item positions leading
/// down through virtual elements. Materialized elements have an empty path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Occ {
    pub base: ElemIdx,
    pub path: Vec<usize>,
}

impl Occ {
    pub fn mat(base: ElemIdx) -> Occ {
        Occ {
            base,
            path: Vec::new(),
        }
    }

    pub fn child(&self, item: usize) -> Occ {
        let mut path = self.path.clone();
        path.push(item);
        Occ {
            base: self.base,
            path,
        }
    }

    /// A stable display key, also used as the `__occ` tag of instance rows.
    pub fn key(&self, aig: &Aig) -> String {
        let mut s = aig.elem_name(self.base).to_string();
        for p in &self.path {
            s.push('.');
            s.push_str(&p.to_string());
        }
        s
    }
}

/// How one scalar inherited field of an occurrence reads out of its base
/// instance table.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarBind {
    /// A column of `T_base`.
    Col(String),
    Const(Value),
}

/// Keys of the relations the tasks produce and consume.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RelKey {
    /// The assembled instance table of a materialized element
    /// (`__rowid, __parent, __ord, __occ, fields…`).
    Instances(ElemIdx),
    /// Output of the generator query of the starred item `item` under the
    /// occurrence (`__parent, fields…`).
    GenOut(Occ, usize),
    /// A set-valued inherited field of an occurrence (`__owner, comps…`).
    InhSet(Occ, String),
    /// A set/bag-valued synthesized field of an occurrence
    /// (`__owner, comps…`).
    Syn(Occ, String),
    /// The choice pick table of an occurrence (`__owner, __pick`).
    Pick(Occ),
    /// The branch-child instance slice of a choice occurrence.
    BranchOut(Occ, usize),
}

impl RelKey {
    pub fn describe(&self, aig: &Aig) -> String {
        match self {
            RelKey::Instances(e) => format!("T[{}]", aig.elem_name(*e)),
            RelKey::GenOut(occ, item) => format!("gen[{}#{item}]", occ.key(aig)),
            RelKey::InhSet(occ, f) => format!("inh[{}.{f}]", occ.key(aig)),
            RelKey::Syn(occ, f) => format!("syn[{}.{f}]", occ.key(aig)),
            RelKey::Pick(occ) => format!("pick[{}]", occ.key(aig)),
            RelKey::BranchOut(occ, b) => format!("branch[{}#{b}]", occ.key(aig)),
        }
    }
}

/// The inherited-attribute binding of one occurrence.
#[derive(Debug, Clone)]
pub struct Binding {
    pub elem: ElemIdx,
    pub occ: Occ,
    pub scalars: HashMap<String, ScalarBind>,
    pub sets: HashMap<String, RelKey>,
}

/// How a relation parameter enters a vectorized query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ParamInput {
    /// The base instance table itself (bound as `$__base`).
    Base(ElemIdx),
    /// A relation, joined with its `__owner` column.
    Rel(RelKey),
    /// The distinct projection (`__owner`, first component) of a relation —
    /// the set-oriented form of an `IN` predicate.
    RelFirstDistinct(RelKey),
}

/// A source query after set-oriented rewriting.
#[derive(Debug, Clone)]
pub struct VectorQuery {
    pub query: Query,
    /// Parameter name → what to bind it to at execution time.
    pub inputs: Vec<(String, ParamInput)>,
    pub source: SourceId,
}

/// What a task does.
#[derive(Debug, Clone)]
pub enum TaskKind {
    /// Builds the one-row root instance table (mediator).
    Root,
    /// A set-oriented generator query for a starred item (at a source), or a
    /// mediator iteration over an already-computed set.
    Gen {
        parent: Occ,
        item: usize,
        query: Option<VectorQuery>,
        /// For `Generator::Set`: the relation iterated.
        set_input: Option<RelKey>,
        /// Broadcast scalar assigns resolved against the parent binding
        /// (field name → bind), applied when assembling.
        broadcast: Vec<(String, ScalarBind)>,
        /// Child inherited scalar fields fed by generator output columns.
        generated_fields: Vec<String>,
    },
    /// A set-valued inherited field computed by a query (at a source).
    InhSetQuery {
        target: Occ,
        field: String,
        query: VectorQuery,
    },
    /// Concatenates the occurrence outputs into the instance table
    /// (mediator).
    Assemble { elem: ElemIdx, inputs: Vec<RelKey> },
    /// Synthesized-attribute aggregation (mediator).
    SynAgg { occ: Occ, field: String },
    /// Choice condition query (at a source).
    Cond { occ: Occ, query: VectorQuery },
    /// Materializes the instances of one choice branch (mediator).
    BranchMat { occ: Occ, branch: usize },
    /// A compiled-constraint guard check (mediator).
    Guard { occ: Occ, guard: usize },
}

/// One node of the task graph.
#[derive(Debug, Clone)]
pub struct Task {
    pub kind: TaskKind,
    pub source: SourceId,
    pub label: String,
    /// Producer tasks this task reads from, with the relation read.
    pub deps: Vec<(usize, RelKey)>,
    /// The relation this task writes (None for guards).
    pub output: Option<RelKey>,
    /// `eval_cost` / `size` estimate (§5.2), filled by `estimate_costs`.
    pub est: CostEstimate,
}

/// The complete task graph of one mediator run.
#[derive(Debug)]
pub struct TaskGraph {
    pub tasks: Vec<Task>,
    /// Producer of every relation.
    pub producer: HashMap<RelKey, usize>,
    /// Bindings of every visited occurrence (used by tagging and SynAgg).
    pub bindings: HashMap<Occ, Binding>,
    /// Materialized elements in creation order.
    pub materialized: Vec<ElemIdx>,
    /// A topological order of the tasks.
    pub topo: Vec<usize>,
    /// Per-query-rule statistics: how many source queries the graph holds.
    pub source_query_count: usize,
}

impl TaskGraph {
    pub fn task(&self, id: usize) -> &Task {
        &self.tasks[id]
    }

    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Successor lists (consumer edges), derived from deps.
    pub fn successors(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.tasks.len()];
        for (id, task) in self.tasks.iter().enumerate() {
            for (dep, _) in &task.deps {
                out[*dep].push(id);
            }
        }
        out
    }
}

impl fmt::Display for TaskGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "task graph ({} tasks)", self.tasks.len())?;
        for (id, t) in self.tasks.iter().enumerate() {
            let deps: Vec<String> = t.deps.iter().map(|(d, _)| d.to_string()).collect();
            writeln!(
                f,
                "  #{id} [{}] {} <- [{}] (est {:.4}s, {:.0} rows)",
                t.source,
                t.label,
                deps.join(", "),
                t.est.eval_secs,
                t.est.out_rows
            )?;
        }
        Ok(())
    }
}

/// Options for graph construction.
#[derive(Debug, Clone)]
pub struct GraphOptions {
    pub cost_model: CostModel,
    /// Mediator-side per-tuple processing cost (seconds).
    pub mediator_per_tuple_secs: f64,
    /// Calibration factor applied to measured in-process execution times
    /// when simulating response times (our embedded engine vs the paper's
    /// 2003 testbed).
    pub eval_scale: f64,
}

impl Default for GraphOptions {
    fn default() -> Self {
        GraphOptions {
            cost_model: CostModel::default(),
            mediator_per_tuple_secs: 2e-7,
            eval_scale: 1.0,
        }
    }
}

pub(crate) struct Builder<'a> {
    aig: &'a Aig,
    catalog: &'a Catalog,
    tasks: Vec<Task>,
    producer: HashMap<RelKey, usize>,
    bindings: HashMap<Occ, Binding>,
    materialized: Vec<ElemIdx>,
    mat_set: HashSet<ElemIdx>,
    /// Pending occurrence outputs per materialized element.
    pending_instances: HashMap<ElemIdx, Vec<RelKey>>,
    /// Syn keys that require SynAgg tasks: (occ, field).
    needed_syn: Vec<(Occ, String)>,
    needed_syn_set: HashSet<(Occ, String)>,
    source_query_count: usize,
}

/// Builds the task graph for an unfolded, specialized AIG.
pub fn build_graph(
    aig: &Aig,
    catalog: &Catalog,
    opts: &GraphOptions,
) -> Result<TaskGraph, MediatorError> {
    let mut b = Builder {
        aig,
        catalog,
        tasks: Vec::new(),
        producer: HashMap::new(),
        bindings: HashMap::new(),
        materialized: Vec::new(),
        mat_set: HashSet::new(),
        pending_instances: HashMap::new(),
        needed_syn: Vec::new(),
        needed_syn_set: HashSet::new(),
        source_query_count: 0,
    };
    b.check_materialization_conflicts()?;
    b.build()?;
    b.patch_deps()?;
    let topo = b.topo_order()?;
    let mut graph = TaskGraph {
        tasks: b.tasks,
        producer: b.producer,
        bindings: b.bindings,
        materialized: b.materialized,
        topo,
        source_query_count: b.source_query_count,
    };
    estimate_costs(&mut graph, catalog, opts);
    Ok(graph)
}

impl<'a> Builder<'a> {
    /// The materialized set: root, star children, branch children. An
    /// element must not be required in both a materialized and a virtual
    /// role.
    fn check_materialization_conflicts(&mut self) -> Result<(), MediatorError> {
        let aig = self.aig;
        let mut mat: HashSet<ElemIdx> = HashSet::new();
        let mut virt: HashSet<ElemIdx> = HashSet::new();
        mat.insert(aig.root);
        for e in aig.elements() {
            match &aig.elem_info(e).prod {
                Prod::Items(items) => {
                    for item in items {
                        if item.star {
                            mat.insert(item.elem);
                        } else {
                            virt.insert(item.elem);
                        }
                    }
                }
                Prod::Choice { branches, .. } => {
                    for branch in branches {
                        mat.insert(branch.elem);
                    }
                }
                _ => {}
            }
        }
        if let Some(conflict) = mat.intersection(&virt).next() {
            return Err(MediatorError::Unsupported(format!(
                "element `{}` is both a starred/branch child (materialized) and a plain \
                 sequence child (virtual); use the conceptual evaluator for this AIG",
                aig.elem_name(*conflict)
            )));
        }
        self.mat_set = mat;
        Ok(())
    }

    fn build(&mut self) -> Result<(), MediatorError> {
        let aig = self.aig;
        // Root task.
        let root_key = RelKey::Instances(aig.root);
        self.push_task(Task {
            kind: TaskKind::Root,
            source: SourceId::MEDIATOR,
            label: format!("root[{}]", aig.elem_name(aig.root)),
            deps: Vec::new(),
            output: Some(root_key),
            est: CostEstimate::ZERO,
        });
        self.materialized.push(aig.root);

        // Process materialized elements in topological (parents-first) order
        // of the element DAG.
        let order = self.element_topo()?;
        for e in order {
            if !self.mat_set.contains(&e) {
                continue;
            }
            if e != aig.root {
                // Assemble from pending occurrence outputs (may be created
                // below for choice branches before their Assemble runs —
                // pending list was filled while processing parents).
                let inputs = self.pending_instances.remove(&e).unwrap_or_default();
                if inputs.is_empty() {
                    // Unreachable materialized element (e.g. a truncated
                    // level): no instances, still emit an empty assemble so
                    // downstream lookups succeed.
                }
                let deps = inputs.iter().map(|k| (usize::MAX, k.clone())).collect();
                self.push_task(Task {
                    kind: TaskKind::Assemble {
                        elem: e,
                        inputs: inputs.clone(),
                    },
                    source: SourceId::MEDIATOR,
                    label: format!("assemble[{}]", aig.elem_name(e)),
                    deps,
                    output: Some(RelKey::Instances(e)),
                    est: CostEstimate::ZERO,
                });
                self.materialized.push(e);
            }
            // Identity binding for the materialized element.
            let occ = Occ::mat(e);
            let info = aig.elem_info(e);
            let mut scalars = HashMap::new();
            let mut sets = HashMap::new();
            for field in &info.inh {
                if field.ty.is_scalar() {
                    scalars.insert(field.name.clone(), ScalarBind::Col(field.name.clone()));
                } else {
                    sets.insert(
                        field.name.clone(),
                        RelKey::InhSet(occ.clone(), field.name.clone()),
                    );
                }
            }
            let binding = Binding {
                elem: e,
                occ: occ.clone(),
                scalars,
                sets,
            };
            self.bindings.insert(occ.clone(), binding.clone());
            self.visit_production(&binding)?;
        }

        // Guard tasks (may enqueue SynAgg needs).
        let occs: Vec<Occ> = self.bindings.keys().cloned().collect();
        let mut sorted = occs;
        sorted.sort();
        for occ in sorted {
            let elem = self.bindings[&occ].elem;
            let guards = aig.elem_info(elem).guards.clone();
            for (gi, guard) in guards.iter().enumerate() {
                let fields: Vec<&String> = match &guard.kind {
                    aig_core::spec::GuardKind::Unique { field } => vec![field],
                    aig_core::spec::GuardKind::Subset { sub, sup } => vec![sub, sup],
                };
                let mut deps = Vec::new();
                for f in fields {
                    let key = self.syn_relkey(&occ, f)?;
                    deps.push((usize::MAX, key));
                }
                self.push_task(Task {
                    kind: TaskKind::Guard {
                        occ: occ.clone(),
                        guard: gi,
                    },
                    source: SourceId::MEDIATOR,
                    label: format!("guard[{} #{gi}]", occ.key(aig)),
                    deps,
                    output: None,
                    est: CostEstimate::ZERO,
                });
            }
        }

        // Create the needed SynAgg tasks (collected during the visit and
        // guard passes) and close over their own references.
        let mut cursor = 0;
        while cursor < self.needed_syn.len() {
            let (occ, field) = self.needed_syn[cursor].clone();
            cursor += 1;
            self.create_syn_task(&occ, &field)?;
        }
        Ok(())
    }

    fn push_task(&mut self, task: Task) -> usize {
        let id = self.tasks.len();
        if let Some(key) = &task.output {
            self.producer.insert(key.clone(), id);
        }
        self.tasks.push(task);
        id
    }

    fn producer_of(&self, key: &RelKey) -> Result<usize, MediatorError> {
        self.producer.get(key).copied().ok_or_else(|| {
            MediatorError::Internal(format!("no producer for {}", key.describe(self.aig)))
        })
    }

    fn element_topo(&self) -> Result<Vec<ElemIdx>, MediatorError> {
        let aig = self.aig;
        let n = aig.len();
        let mut indegree = vec![0usize; n];
        let mut edges: Vec<Vec<ElemIdx>> = vec![Vec::new(); n];
        for e in aig.elements() {
            for c in aig.children_of(e) {
                edges[e.index()].push(c);
                indegree[c.index()] += 1;
            }
        }
        let mut queue: Vec<ElemIdx> = aig
            .elements()
            .filter(|e| indegree[e.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(e) = queue.pop() {
            order.push(e);
            for &c in &edges[e.index()].clone() {
                indegree[c.index()] -= 1;
                if indegree[c.index()] == 0 {
                    queue.push(c);
                }
            }
        }
        if order.len() != n {
            return Err(MediatorError::Unsupported(
                "the element graph is recursive; unfold the AIG first (§5.5)".to_string(),
            ));
        }
        Ok(order)
    }

    /// Visits the production of the element at `binding`, creating tasks for
    /// query-driven children and recursing into virtual ones.
    fn visit_production(&mut self, binding: &Binding) -> Result<(), MediatorError> {
        let aig = self.aig;
        let info = aig.elem_info(binding.elem);
        match &info.prod {
            Prod::Pcdata { .. } | Prod::Empty => Ok(()),
            Prod::Items(items) => {
                // Dependency order (§3.2): siblings whose attributes feed a
                // generator (e.g. decomposition states) bind first.
                let order = info.topo.clone();
                let stars: Vec<bool> = items.iter().map(|i| i.star).collect();
                for pos in order {
                    if stars[pos] {
                        self.visit_star_item(binding, pos)?;
                    } else {
                        let child_binding = self.bind_virtual_child(binding, pos)?;
                        self.visit_production(&child_binding)?;
                    }
                }
                Ok(())
            }
            Prod::Choice { cond, branches } => {
                // Condition query per instance.
                let vq = self.vectorize(cond, binding, None)?;
                let mut deps = self.query_deps(&vq)?;
                deps.push((usize::MAX, RelKey::Instances(binding.occ.base)));
                let pick_key = RelKey::Pick(binding.occ.clone());
                self.source_query_count += 1;
                self.push_task(Task {
                    kind: TaskKind::Cond {
                        occ: binding.occ.clone(),
                        query: vq.clone(),
                    },
                    source: vq.source,
                    label: format!("cond[{}]", binding.occ.key(aig)),
                    deps,
                    output: Some(pick_key.clone()),
                    est: CostEstimate::ZERO,
                });
                for (bno, branch) in branches.iter().enumerate() {
                    // Branch materialization: scalar assigns only.
                    let child_info = aig.elem_info(branch.elem);
                    for (field, rule) in &branch.assigns {
                        match rule {
                            FieldRule::Scalar(_) => {}
                            _ => {
                                return Err(MediatorError::Unsupported(format!(
                                    "set-valued assignment `{field}` on choice branch `{}`",
                                    child_info.name
                                )))
                            }
                        }
                    }
                    let out_key = RelKey::BranchOut(binding.occ.clone(), bno);
                    let deps = vec![
                        (usize::MAX, pick_key.clone()),
                        (usize::MAX, RelKey::Instances(binding.occ.base)),
                    ];
                    self.push_task(Task {
                        kind: TaskKind::BranchMat {
                            occ: binding.occ.clone(),
                            branch: bno,
                        },
                        source: SourceId::MEDIATOR,
                        label: format!("branch[{}#{bno}]", binding.occ.key(aig)),
                        deps,
                        output: Some(out_key.clone()),
                        est: CostEstimate::ZERO,
                    });
                    self.pending_instances
                        .entry(branch.elem)
                        .or_default()
                        .push(out_key);
                }
                Ok(())
            }
        }
    }

    fn visit_star_item(&mut self, binding: &Binding, pos: usize) -> Result<(), MediatorError> {
        let aig = self.aig;
        let info = aig.elem_info(binding.elem);
        let Prod::Items(items) = &info.prod else {
            unreachable!()
        };
        let item = &items[pos];
        let child_info = aig.elem_info(item.elem);
        // Broadcast scalar assigns resolve against this binding; set assigns
        // on star children are unsupported.
        let mut broadcast = Vec::new();
        for (field, rule) in &item.assigns {
            match rule {
                FieldRule::Scalar(expr) => {
                    broadcast.push((field.clone(), self.resolve_bind(binding, expr)?));
                }
                _ => {
                    return Err(MediatorError::Unsupported(format!(
                        "set-valued broadcast assignment `{field}` on starred child `{}`",
                        child_info.name
                    )))
                }
            }
        }
        let generated_fields: Vec<String> = child_info
            .inh
            .iter()
            .filter(|f| f.ty.is_scalar() && !broadcast.iter().any(|(n, _)| n == &f.name))
            .map(|f| f.name.clone())
            .collect();
        if child_info
            .inh
            .iter()
            .any(|f| !f.ty.is_scalar() && !broadcast.iter().any(|(n, _)| n == &f.name))
        {
            return Err(MediatorError::Unsupported(format!(
                "starred child `{}` has a set-valued inherited field",
                child_info.name
            )));
        }
        let out_key = RelKey::GenOut(binding.occ.clone(), pos);
        let (kind, source, deps) = match item.generator.as_ref().expect("validated") {
            Generator::Query(qr) => {
                let vq = self.vectorize(qr, binding, None)?;
                let mut deps = self.query_deps(&vq)?;
                deps.push((usize::MAX, RelKey::Instances(binding.occ.base)));
                self.source_query_count += 1;
                (
                    TaskKind::Gen {
                        parent: binding.occ.clone(),
                        item: pos,
                        query: Some(vq.clone()),
                        set_input: None,
                        broadcast: broadcast.clone(),
                        generated_fields: generated_fields.clone(),
                    },
                    vq.source,
                    deps,
                )
            }
            Generator::Set(expr) => {
                let input = self.set_expr_relkey(binding, expr)?;
                let deps = match &input {
                    Some(key) => vec![(usize::MAX, key.clone())],
                    None => vec![(usize::MAX, RelKey::Instances(binding.occ.base))],
                };
                (
                    TaskKind::Gen {
                        parent: binding.occ.clone(),
                        item: pos,
                        query: None,
                        set_input: input,
                        broadcast: broadcast.clone(),
                        generated_fields: generated_fields.clone(),
                    },
                    SourceId::MEDIATOR,
                    deps,
                )
            }
        };
        self.push_task(Task {
            kind,
            source,
            label: format!("gen[{}#{pos}->{}]", binding.occ.key(aig), child_info.name),
            deps,
            output: Some(out_key.clone()),
            est: CostEstimate::ZERO,
        });
        self.pending_instances
            .entry(item.elem)
            .or_default()
            .push(out_key);
        Ok(())
    }

    /// Computes the binding of a virtual (plain sequence) child, creating
    /// `InhSetQuery` tasks for query-computed set fields.
    fn bind_virtual_child(
        &mut self,
        binding: &Binding,
        pos: usize,
    ) -> Result<Binding, MediatorError> {
        let aig = self.aig;
        let info = aig.elem_info(binding.elem);
        let Prod::Items(items) = &info.prod else {
            unreachable!()
        };
        let item = &items[pos];
        let child_info = aig.elem_info(item.elem);
        let child_occ = binding.occ.child(pos);
        let mut scalars = HashMap::new();
        let mut sets = HashMap::new();
        for (field, rule) in &item.assigns {
            let decl = child_info
                .inh
                .iter()
                .find(|f| &f.name == field)
                .expect("validated");
            if decl.ty.is_scalar() {
                let FieldRule::Scalar(expr) = rule else {
                    unreachable!("validated types")
                };
                scalars.insert(field.clone(), self.resolve_bind(binding, expr)?);
            } else {
                let key = match rule {
                    FieldRule::Set(expr) => match self.set_expr_relkey(binding, expr)? {
                        Some(key) => key,
                        None => {
                            // A constructed set: a mediator InhSet task would
                            // be needed; reuse SynAgg machinery by treating
                            // it as an InhSet compute.
                            return Err(MediatorError::Unsupported(format!(
                                "constructed set expression for inherited field \
                                 `{field}` of `{}` (only direct copies and queries \
                                 are set-oriented)",
                                child_info.name
                            )));
                        }
                    },
                    FieldRule::Query(qr) => {
                        let vq = self.vectorize(qr, binding, None)?;
                        let mut deps = self.query_deps(&vq)?;
                        deps.push((usize::MAX, RelKey::Instances(binding.occ.base)));
                        let key = RelKey::InhSet(child_occ.clone(), field.clone());
                        self.source_query_count += 1;
                        self.push_task(Task {
                            kind: TaskKind::InhSetQuery {
                                target: child_occ.clone(),
                                field: field.clone(),
                                query: vq.clone(),
                            },
                            source: vq.source,
                            label: format!("inhset[{}.{field}]", child_occ.key(aig)),
                            deps,
                            output: Some(key.clone()),
                            est: CostEstimate::ZERO,
                        });
                        key
                    }
                    FieldRule::Scalar(_) => unreachable!("validated types"),
                };
                sets.insert(field.clone(), key);
            }
        }
        let child_binding = Binding {
            elem: item.elem,
            occ: child_occ.clone(),
            scalars,
            sets,
        };
        self.bindings.insert(child_occ, child_binding.clone());
        Ok(child_binding)
    }

    /// Resolves a scalar rule expression to a base-table column or constant
    /// (following copy chains, §4).
    fn resolve_bind(
        &self,
        binding: &Binding,
        expr: &ValueExpr,
    ) -> Result<ScalarBind, MediatorError> {
        match resolve_scalar(self.aig, binding.elem, expr) {
            Some(ResolvedScalar::Const(v)) => Ok(ScalarBind::Const(v)),
            Some(ResolvedScalar::InhField(f)) => {
                binding.scalars.get(&f).cloned().ok_or_else(|| {
                    MediatorError::Internal(format!(
                        "binding of `{}` lacks scalar field `{f}`",
                        self.aig.elem_name(binding.elem)
                    ))
                })
            }
            None => Err(MediatorError::Unsupported(format!(
                "a scalar rule at `{}` does not resolve through copy chains",
                self.aig.elem_name(binding.elem)
            ))),
        }
    }

    /// Resolves a set expression that is a *pure copy* to the relation it
    /// denotes; `Ok(None)` when the expression constructs a new set.
    fn set_expr_relkey(
        &mut self,
        binding: &Binding,
        expr: &SetExpr,
    ) -> Result<Option<RelKey>, MediatorError> {
        match expr {
            SetExpr::InhField(f) => Ok(Some(binding.sets.get(f).cloned().ok_or_else(|| {
                MediatorError::Internal(format!(
                    "binding of `{}` lacks set field `{f}`",
                    self.aig.elem_name(binding.elem)
                ))
            })?)),
            SetExpr::ChildSyn { item, field } => {
                let occ = binding.occ.child(*item);
                // Sibling must be virtual (non-star children always are).
                let key = self.syn_relkey_at(&occ, self.sibling_elem(binding, *item)?, field)?;
                Ok(Some(key))
            }
            _ => Ok(None),
        }
    }

    fn sibling_elem(&self, binding: &Binding, item: usize) -> Result<ElemIdx, MediatorError> {
        let info = self.aig.elem_info(binding.elem);
        match &info.prod {
            Prod::Items(items) => Ok(items[item].elem),
            _ => Err(MediatorError::Internal(
                "sibling reference outside an items production".to_string(),
            )),
        }
    }

    /// The relation key of `Syn(occ).field`, following set-copy chains and
    /// registering a SynAgg task when the rule constructs a new set.
    fn syn_relkey(&mut self, occ: &Occ, field: &str) -> Result<RelKey, MediatorError> {
        let elem = self.bindings.get(occ).map(|b| b.elem).ok_or_else(|| {
            MediatorError::Internal(format!("unknown occurrence {}", occ.key(self.aig)))
        })?;
        self.syn_relkey_at(occ, elem, field)
    }

    fn syn_relkey_at(
        &mut self,
        occ: &Occ,
        elem: ElemIdx,
        field: &str,
    ) -> Result<RelKey, MediatorError> {
        let key = resolve_syn_key(self.aig, &self.bindings, occ, elem, field)?;
        if let RelKey::Syn(o, f) = &key {
            let o = o.clone();
            let f = f.clone();
            self.need_syn(&o, &f);
        }
        Ok(key)
    }

    fn need_syn(&mut self, occ: &Occ, field: &str) {
        let key = (occ.clone(), field.to_string());
        if self.needed_syn_set.insert(key.clone()) {
            self.needed_syn.push(key);
        }
    }

    /// Creates the SynAgg task for `(occ, field)`, resolving the rule's
    /// references (which may enqueue further SynAgg needs).
    fn create_syn_task(&mut self, occ: &Occ, field: &str) -> Result<(), MediatorError> {
        let aig = self.aig;
        let out_key = RelKey::Syn(occ.clone(), field.to_string());
        if self.producer.contains_key(&out_key) {
            return Ok(());
        }
        let binding = self.bindings.get(occ).cloned().ok_or_else(|| {
            MediatorError::Internal(format!("unvisited occurrence {}", occ.key(aig)))
        })?;
        let info = aig.elem_info(binding.elem);
        let mut deps: Vec<(usize, RelKey)> = Vec::new();
        // The owner space: every SynAgg needs the base instances.
        deps.push((usize::MAX, RelKey::Instances(occ.base)));
        match &info.prod {
            Prod::Choice { branches, .. } => {
                let pick = RelKey::Pick(occ.clone());
                deps.push((usize::MAX, pick));
                for (bno, branch) in branches.iter().enumerate() {
                    let branch_key = RelKey::BranchOut(occ.clone(), bno);
                    deps.push((usize::MAX, branch_key));
                    if let Some(rule) = branch.syn.iter().find(|r| r.field == field) {
                        match &rule.rule {
                            FieldRule::Set(SetExpr::ChildSyn { item: 0, field: f }) => {
                                let child_occ = Occ::mat(branch.elem);
                                let key = self.syn_relkey_at(&child_occ, branch.elem, f)?;
                                deps.push((usize::MAX, key));
                            }
                            FieldRule::Set(SetExpr::Empty) => {}
                            _ => {
                                return Err(MediatorError::Unsupported(format!(
                                    "choice branch synthesized rule for `{field}` at `{}` \
                                     is not a direct child copy",
                                    info.name
                                )))
                            }
                        }
                    }
                }
            }
            _ => {
                let rule = info
                    .syn_rules
                    .iter()
                    .find(|r| r.field == field)
                    .ok_or_else(|| {
                        MediatorError::Internal(format!(
                            "`{}` has no synthesized rule for `{field}`",
                            info.name
                        ))
                    })?
                    .clone();
                self.collect_rule_deps(&binding, &rule.rule, &mut deps)?;
            }
        }
        self.push_task(Task {
            kind: TaskKind::SynAgg {
                occ: occ.clone(),
                field: field.to_string(),
            },
            source: SourceId::MEDIATOR,
            label: format!("syn[{}.{field}]", occ.key(aig)),
            deps,
            output: Some(out_key),
            est: CostEstimate::ZERO,
        });
        Ok(())
    }

    /// Registers the relations a set rule reads (creating referenced SynAgg
    /// tasks eagerly so producers exist).
    fn collect_rule_deps(
        &mut self,
        binding: &Binding,
        rule: &FieldRule,
        deps: &mut Vec<(usize, RelKey)>,
    ) -> Result<(), MediatorError> {
        match rule {
            FieldRule::Scalar(_) => Ok(()),
            FieldRule::Query(_) => Err(MediatorError::Internal(
                "queries cannot appear in synthesized rules".to_string(),
            )),
            FieldRule::Set(expr) => self.collect_set_deps(binding, expr, deps),
        }
    }

    fn collect_set_deps(
        &mut self,
        binding: &Binding,
        expr: &SetExpr,
        deps: &mut Vec<(usize, RelKey)>,
    ) -> Result<(), MediatorError> {
        let aig = self.aig;
        match expr {
            SetExpr::Empty | SetExpr::Singleton(_) => Ok(()),
            SetExpr::InhField(f) => {
                let key =
                    binding.sets.get(f).cloned().ok_or_else(|| {
                        MediatorError::Internal(format!("no set binding for `{f}`"))
                    })?;
                deps.push((usize::MAX, key));
                Ok(())
            }
            SetExpr::ChildSyn { item, field } => {
                let child_occ = binding.occ.child(*item);
                let child_elem = self.sibling_elem(binding, *item)?;
                let key = self.syn_relkey_at(&child_occ, child_elem, field)?;
                deps.push((usize::MAX, key));
                Ok(())
            }
            SetExpr::Collect { item, field } => {
                let child_elem = self.sibling_elem(binding, *item)?;
                let child_info = aig.elem_info(child_elem);
                deps.push((usize::MAX, RelKey::Instances(child_elem)));
                let is_rel = child_info
                    .syn
                    .iter()
                    .find(|f| f.name == *field)
                    .map(|f| !f.ty.is_scalar())
                    .unwrap_or(false);
                if is_rel {
                    let child_occ = Occ::mat(child_elem);
                    let key = self.syn_relkey_at(&child_occ, child_elem, field)?;
                    deps.push((usize::MAX, key));
                }
                Ok(())
            }
            SetExpr::Union(terms) => {
                for t in terms {
                    self.collect_set_deps(binding, t, deps)?;
                }
                Ok(())
            }
        }
    }

    /// Dependencies a vectorized query introduces (its relation inputs).
    /// Producer task ids are patched in `patch_deps` once every task exists.
    fn query_deps(&self, vq: &VectorQuery) -> Result<Vec<(usize, RelKey)>, MediatorError> {
        let mut deps = Vec::new();
        for (_, input) in &vq.inputs {
            match input {
                ParamInput::Base(e) => {
                    deps.push((usize::MAX, RelKey::Instances(*e)));
                }
                ParamInput::Rel(key) | ParamInput::RelFirstDistinct(key) => {
                    deps.push((usize::MAX, key.clone()));
                }
            }
        }
        Ok(deps)
    }

    /// Resolves every deferred dependency to its producing task.
    fn patch_deps(&mut self) -> Result<(), MediatorError> {
        for id in 0..self.tasks.len() {
            for pos in 0..self.tasks[id].deps.len() {
                if self.tasks[id].deps[pos].0 == usize::MAX {
                    let key = self.tasks[id].deps[pos].1.clone();
                    let producer = self.producer_of(&key)?;
                    self.tasks[id].deps[pos].0 = producer;
                }
            }
            let mut deps = std::mem::take(&mut self.tasks[id].deps);
            dedup_deps(&mut deps);
            self.tasks[id].deps = deps;
        }
        Ok(())
    }

    /// Set-oriented rewriting (§5.1): turns a per-tuple parameterized rule
    /// query into one that joins the whole base instance table, prefixing
    /// the output with the parent row id.
    fn vectorize(
        &mut self,
        qr: &QueryRule,
        binding: &Binding,
        _hint: Option<&str>,
    ) -> Result<VectorQuery, MediatorError> {
        let aig = self.aig;
        let q = aig.query(qr.query).clone();
        if !q.is_single_source() {
            return Err(MediatorError::Unsupported(format!(
                "multi-source query `{q}` reached the mediator; run decompose_queries first"
            )));
        }
        let source_name = q.sources().into_iter().next().map(|s| s.to_string());
        let source = match &source_name {
            Some(name) => self.catalog.source_id(name).map_err(MediatorError::Store)?,
            None => SourceId::MEDIATOR,
        };

        // Classify each original parameter.
        let mut scalar_subst: HashMap<String, Scalar> = HashMap::new();
        let mut rel_params: HashMap<String, RelKey> = HashMap::new();
        for (name, src) in &qr.params {
            match src {
                ParamSource::Const(v) => {
                    scalar_subst.insert(name.clone(), Scalar::Const(v.clone()));
                }
                ParamSource::InhField(f) => {
                    if let Some(bind) = binding.scalars.get(f) {
                        scalar_subst.insert(
                            name.clone(),
                            match bind {
                                ScalarBind::Col(c) => {
                                    Scalar::Col(QualCol::new("__base", c.clone()))
                                }
                                ScalarBind::Const(v) => Scalar::Const(v.clone()),
                            },
                        );
                    } else if let Some(key) = binding.sets.get(f) {
                        rel_params.insert(name.clone(), key.clone());
                    } else {
                        return Err(MediatorError::Internal(format!(
                            "binding of `{}` lacks field `{f}`",
                            aig.elem_name(binding.elem)
                        )));
                    }
                }
                ParamSource::ChildSyn { item, field } => {
                    // Scalar sibling syn: resolve through copy chains.
                    let expr = ValueExpr::ChildSyn {
                        item: *item,
                        field: field.clone(),
                    };
                    if let Some(resolved) = resolve_scalar(aig, binding.elem, &expr) {
                        scalar_subst.insert(
                            name.clone(),
                            match resolved {
                                ResolvedScalar::Const(v) => Scalar::Const(v),
                                ResolvedScalar::InhField(f) => {
                                    match binding.scalars.get(&f).cloned().ok_or_else(|| {
                                        MediatorError::Internal(format!(
                                            "missing scalar binding `{f}`"
                                        ))
                                    })? {
                                        ScalarBind::Col(c) => {
                                            Scalar::Col(QualCol::new("__base", c))
                                        }
                                        ScalarBind::Const(v) => Scalar::Const(v),
                                    }
                                }
                            },
                        );
                    } else {
                        // Relational sibling syn.
                        let child_occ = binding.occ.child(*item);
                        let child_elem = self.sibling_elem(binding, *item)?;
                        let key = self.syn_relkey_at(&child_occ, child_elem, field)?;
                        rel_params.insert(name.clone(), key.clone());
                    }
                }
            }
        }

        // Rewrite the query.
        let subst = |s: &Scalar| -> Scalar {
            match s {
                Scalar::Param(name) => scalar_subst
                    .get(name)
                    .cloned()
                    .unwrap_or_else(|| Scalar::Param(name.clone())),
                other => other.clone(),
            }
        };
        let mut from = q.from.clone();
        let mut preds: Vec<Pred> = Vec::new();
        let mut inputs: Vec<(String, ParamInput)> = Vec::new();
        // The base table join.
        from.push(FromItem::Param {
            name: "__base".to_string(),
            alias: "__base".to_string(),
        });
        inputs.push(("__base".to_string(), ParamInput::Base(binding.occ.base)));

        // FROM-clause relation parameters get owner predicates.
        for item in &mut from {
            if let FromItem::Param { name, alias } = item {
                if name == "__base" {
                    continue;
                }
                let key = rel_params.get(name).cloned().ok_or_else(|| {
                    MediatorError::Internal(format!(
                        "query uses relation parameter `${name}` with no binding"
                    ))
                })?;
                preds.push(Pred::Cmp {
                    op: aig_sql::CmpOp::Eq,
                    lhs: Scalar::Col(QualCol::new(alias.clone(), "__owner")),
                    rhs: Scalar::Col(QualCol::new("__base", "__rowid")),
                });
                inputs.push((name.clone(), ParamInput::Rel(key)));
            }
        }
        for pred in &q.preds {
            match pred {
                Pred::Cmp { op, lhs, rhs } => preds.push(Pred::Cmp {
                    op: *op,
                    lhs: subst(lhs),
                    rhs: subst(rhs),
                }),
                Pred::In { col, set } => match set {
                    SetRef::Consts(_) => preds.push(pred.clone()),
                    SetRef::Param(name) => {
                        let key = rel_params.get(name).cloned().ok_or_else(|| {
                            MediatorError::Internal(format!(
                                "IN parameter `${name}` has no relation binding"
                            ))
                        })?;
                        let alias = format!("__in_{name}");
                        from.push(FromItem::Param {
                            name: alias.clone(),
                            alias: alias.clone(),
                        });
                        // col = first component, owner matches the base row.
                        preds.push(Pred::Cmp {
                            op: aig_sql::CmpOp::Eq,
                            lhs: Scalar::Col(col.clone()),
                            rhs: Scalar::Col(QualCol::new(alias.clone(), "__member")),
                        });
                        preds.push(Pred::Cmp {
                            op: aig_sql::CmpOp::Eq,
                            lhs: Scalar::Col(QualCol::new(alias.clone(), "__owner")),
                            rhs: Scalar::Col(QualCol::new("__base", "__rowid")),
                        });
                        inputs.push((alias, ParamInput::RelFirstDistinct(key)));
                    }
                },
            }
        }
        let mut select = vec![SelectItem {
            expr: Scalar::Col(QualCol::new("__base", "__rowid")),
            alias: Some("__parent".to_string()),
        }];
        for (i, item) in q.select.iter().enumerate() {
            select.push(SelectItem {
                expr: subst(&item.expr),
                alias: Some(item.output_name(i)),
            });
        }
        let query = Query {
            distinct: q.distinct,
            select,
            from,
            preds,
        };
        Ok(VectorQuery {
            query,
            inputs,
            source,
        })
    }
}

/// Resolves `Syn(occ).field` to the relation that holds it, following pure
/// set-copy chains through the bindings; a constructed set resolves to
/// `RelKey::Syn` (produced by a SynAgg task). Shared by the graph builder
/// (which additionally registers the SynAgg need) and the executor.
pub fn resolve_syn_key(
    aig: &Aig,
    bindings: &HashMap<Occ, Binding>,
    occ: &Occ,
    elem: ElemIdx,
    field: &str,
) -> Result<RelKey, MediatorError> {
    let info = aig.elem_info(elem);
    if matches!(info.prod, Prod::Choice { .. }) {
        // Per-branch rules: always a SynAgg task.
        return Ok(RelKey::Syn(occ.clone(), field.to_string()));
    }
    let rule = info
        .syn_rules
        .iter()
        .find(|r| r.field == field)
        .ok_or_else(|| {
            MediatorError::Internal(format!(
                "`{}` has no synthesized rule for `{field}`",
                info.name
            ))
        })?;
    match &rule.rule {
        FieldRule::Set(SetExpr::InhField(f)) => {
            let binding = bindings.get(occ).ok_or_else(|| {
                MediatorError::Internal(format!("unvisited occurrence {}", occ.key(aig)))
            })?;
            binding
                .sets
                .get(f)
                .cloned()
                .ok_or_else(|| MediatorError::Internal(format!("no set binding for `{f}`")))
        }
        FieldRule::Set(SetExpr::ChildSyn { item, field: f }) => {
            let child_occ = occ.child(*item);
            let child_elem = match &info.prod {
                Prod::Items(items) => items[*item].elem,
                _ => {
                    return Err(MediatorError::Internal(
                        "child syn on a leaf production".to_string(),
                    ))
                }
            };
            resolve_syn_key(aig, bindings, &child_occ, child_elem, f)
        }
        _ => Ok(RelKey::Syn(occ.clone(), field.to_string())),
    }
}

fn dedup_deps(deps: &mut Vec<(usize, RelKey)>) {
    let mut seen = HashSet::new();
    deps.retain(|(id, key)| seen.insert((*id, key.clone())));
}

impl TaskGraph {
    fn topo_of(tasks: &[Task]) -> Result<Vec<usize>, MediatorError> {
        let n = tasks.len();
        let mut indegree = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, t) in tasks.iter().enumerate() {
            for (dep, _) in &t.deps {
                succ[*dep].push(id);
                indegree[id] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        queue.reverse();
        let mut order = Vec::with_capacity(n);
        while let Some(t) = queue.pop() {
            order.push(t);
            for &s in &succ[t] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() != n {
            return Err(MediatorError::Internal("task graph is cyclic".to_string()));
        }
        Ok(order)
    }
}

impl Builder<'_> {
    fn topo_order(&self) -> Result<Vec<usize>, MediatorError> {
        TaskGraph::topo_of(&self.tasks)
    }
}

/// Fills `est` for every task, propagating sizes through the graph in
/// topological order (the costing API of §5.2: estimates of upstream queries
/// are fed into downstream estimates).
pub fn estimate_costs(graph: &mut TaskGraph, catalog: &Catalog, opts: &GraphOptions) {
    let stats = CatalogStats::compute(catalog);
    let order = graph.topo.clone();
    for id in order {
        let deps: Vec<(usize, RelKey)> = graph.tasks[id].deps.clone();
        let dep_est = |key: &RelKey| -> CostEstimate {
            deps.iter()
                .find(|(_, k)| k == key)
                .map(|(d, _)| graph.tasks[*d].est)
                .unwrap_or(CostEstimate::ZERO)
        };
        let med = |rows: f64, width: f64| CostEstimate {
            eval_secs: rows * opts.mediator_per_tuple_secs,
            out_rows: rows,
            out_bytes: rows * width,
        };
        let est = match &graph.tasks[id].kind {
            TaskKind::Root => CostEstimate {
                eval_secs: 0.0,
                out_rows: 1.0,
                out_bytes: 64.0,
            },
            TaskKind::Gen {
                query, set_input, ..
            } => {
                if let Some(vq) = query {
                    estimate_vector_query(vq, &stats, &deps, graph, &opts.cost_model)
                } else {
                    let input = set_input
                        .as_ref()
                        .map(dep_est)
                        .unwrap_or(CostEstimate::ZERO);
                    med(input.out_rows, 32.0)
                }
            }
            TaskKind::InhSetQuery { query, .. } => {
                estimate_vector_query(query, &stats, &deps, graph, &opts.cost_model)
            }
            TaskKind::Cond { query, .. } => {
                estimate_vector_query(query, &stats, &deps, graph, &opts.cost_model)
            }
            TaskKind::Assemble { inputs, .. } => {
                let rows: f64 = inputs.iter().map(|k| dep_est(k).out_rows).sum();
                let bytes: f64 = inputs.iter().map(|k| dep_est(k).out_bytes).sum();
                CostEstimate {
                    eval_secs: rows * opts.mediator_per_tuple_secs,
                    out_rows: rows.max(if matches!(graph.tasks[id].kind, TaskKind::Root) {
                        1.0
                    } else {
                        0.0
                    }),
                    out_bytes: bytes + rows * 12.0,
                }
            }
            TaskKind::BranchMat { .. } => {
                // Roughly: base rows split across branches.
                let base = deps
                    .iter()
                    .find(|(_, k)| matches!(k, RelKey::Instances(_)))
                    .map(|(d, _)| graph.tasks[*d].est)
                    .unwrap_or(CostEstimate::ZERO);
                med(base.out_rows / 2.0, 32.0)
            }
            TaskKind::SynAgg { .. } => {
                let rows: f64 = deps.iter().map(|(d, _)| graph.tasks[*d].est.out_rows).sum();
                med(rows, 24.0)
            }
            TaskKind::Guard { .. } => {
                let rows: f64 = deps.iter().map(|(d, _)| graph.tasks[*d].est.out_rows).sum();
                CostEstimate {
                    eval_secs: rows * opts.mediator_per_tuple_secs,
                    out_rows: 0.0,
                    out_bytes: 0.0,
                }
            }
        };
        graph.tasks[id].est = est;
    }
}

fn estimate_vector_query(
    vq: &VectorQuery,
    stats: &CatalogStats,
    deps: &[(usize, RelKey)],
    graph: &TaskGraph,
    model: &CostModel,
) -> CostEstimate {
    let mut params: HashMap<String, ParamStats> = HashMap::new();
    for (name, input) in &vq.inputs {
        let key = match input {
            ParamInput::Base(e) => RelKey::Instances(*e),
            ParamInput::Rel(k) | ParamInput::RelFirstDistinct(k) => k.clone(),
        };
        if let Some((d, _)) = deps.iter().find(|(_, k)| *k == key) {
            params.insert(
                name.clone(),
                ParamStats::from_estimate(&graph.tasks[*d].est),
            );
        }
    }
    estimate(&vq.query, stats, &params, model)
}

/// A per-source summary of the graph (for reports and tests).
pub fn source_histogram(graph: &TaskGraph, catalog: &Catalog) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for t in &graph.tasks {
        let name = catalog.source(t.source).name().to_string();
        *out.entry(name).or_insert(0) += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unfold::{unfold, CutOff};
    use aig_core::paper::{mini_hospital_catalog, sigma0};
    use aig_core::{compile_constraints, decompose_queries, parse_aig};

    fn sigma0_graph(depth: usize) -> (aig_core::spec::Aig, Catalog, TaskGraph) {
        let aig = sigma0().unwrap();
        let compiled = compile_constraints(&aig).unwrap();
        let (specialized, _) = decompose_queries(&compiled).unwrap();
        let unfolded = unfold(&specialized, depth, CutOff::Truncate).unwrap();
        let catalog = mini_hospital_catalog().unwrap();
        let graph = build_graph(&unfolded.aig, &catalog, &GraphOptions::default()).unwrap();
        (unfolded.aig, catalog, graph)
    }

    #[test]
    fn sigma0_graph_shape() {
        let (aig, catalog, graph) = sigma0_graph(3);
        // Materialized: report, patient, item, treatment@1..3.
        assert_eq!(graph.materialized.len(), 6);
        // Source queries: Q1, Q2 decomposed into 3 steps, Q3 per level (2:
        // the deepest level is truncated), Q4 = 7.
        assert_eq!(graph.source_query_count, 7);
        // Every task is assigned to a real source or the mediator.
        let histogram = source_histogram(&graph, &catalog);
        assert!(histogram.contains_key("Mediator"));
        for db in ["DB1", "DB2", "DB3", "DB4"] {
            assert!(histogram.contains_key(db), "{db} missing: {histogram:?}");
        }
        // The topo order is consistent: producers precede consumers.
        let mut pos = vec![0usize; graph.len()];
        for (i, &t) in graph.topo.iter().enumerate() {
            pos[t] = i;
        }
        for (id, task) in graph.tasks.iter().enumerate() {
            for (dep, _) in &task.deps {
                assert!(pos[*dep] < pos[id], "{} after its consumer", *dep);
            }
        }
        let _ = aig;
    }

    #[test]
    fn vectorized_queries_join_the_base_table() {
        let (_aig, _catalog, graph) = sigma0_graph(2);
        let mut saw_query = false;
        for task in &graph.tasks {
            let vq = match &task.kind {
                TaskKind::Gen {
                    query: Some(vq), ..
                } => vq,
                TaskKind::InhSetQuery { query, .. } => vq_of(query),
                _ => continue,
            };
            saw_query = true;
            // The rewritten query starts its SELECT with the parent rowid
            // and binds the base instance table (§5.1).
            assert_eq!(vq.query.output_columns()[0], "__parent");
            assert!(vq
                .inputs
                .iter()
                .any(|(name, input)| name == "__base" && matches!(input, ParamInput::Base(_))));
            assert!(vq.query.is_single_source());
        }
        assert!(saw_query);
        fn vq_of(v: &VectorQuery) -> &VectorQuery {
            v
        }
    }

    #[test]
    fn estimates_are_filled_and_monotone() {
        let (_aig, _catalog, graph) = sigma0_graph(3);
        // Every non-root task got an estimate; sizes are finite.
        for task in &graph.tasks {
            assert!(task.est.eval_secs.is_finite());
            assert!(task.est.out_rows.is_finite());
            assert!(task.est.out_bytes >= 0.0);
        }
        // The patient generator expects a non-trivial result on Table-1-like
        // statistics.
        let patient_gen = graph
            .tasks
            .iter()
            .find(|t| t.label.starts_with("gen[report"))
            .unwrap();
        assert!(patient_gen.est.out_rows >= 1.0);
    }

    #[test]
    fn mixed_materialization_is_rejected() {
        // `x` is both a starred child (of a) and a plain child (of b):
        // unsupported by the set-oriented evaluator.
        let aig = parse_aig(
            r#"
            aig conflict {
              dtd {
                <!ELEMENT r (a, b)>
                <!ELEMENT a (x*)>
                <!ELEMENT b (x)>
                <!ELEMENT x (#PCDATA)>
              }
              elem r {
                inh(day);
                child a { day = $day; }
                child b { day = $day; }
              }
              elem a {
                inh(day);
                child x* from sql { select t.id as val from DB1:items t
                                    where t.day = $day };
              }
              elem b {
                inh(day);
                child x { val = $day; }
              }
            }
            "#,
        )
        .unwrap();
        let catalog = Catalog::new();
        let err = build_graph(&aig, &catalog, &GraphOptions::default()).unwrap_err();
        assert!(matches!(err, MediatorError::Unsupported(_)), "{err}");
    }

    #[test]
    fn occ_keys_are_stable_and_distinct() {
        let (aig, _catalog, graph) = sigma0_graph(2);
        let mut keys: Vec<String> = graph.bindings.keys().map(|o| o.key(&aig)).collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len(), "occurrence keys must be unique");
    }
}
