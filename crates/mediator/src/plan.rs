//! The prepared-plan split of the mediator pipeline (paper §5.1, Fig. 5).
//!
//! **Prepare** performs every argument-independent stage — constraint
//! compilation (§3.3), query decomposition (§3.4), recursion unfolding to a
//! depth estimate (§5.5), task-graph construction, and estimate-based
//! costing/scheduling/merging (§5.2–5.4) — and freezes the result into an
//! immutable [`PreparedPlan`]. **Execute** binds the request arguments and
//! runs the plan: source queries, frontier detection, tagging, validation,
//! and the measured-cost response-time simulation. Splitting the two lets a
//! service ([`crate::service::Mediator`]) amortize preparation across
//! requests the way relational engines amortize prepared statements.

use crate::cost::{estimated_costs, measured_costs, CostGraph};
use crate::error::MediatorError;
use crate::exec::{execute_graph, ExecOptions, ExecResult};
use crate::faults::IntegrityOutcome;
use crate::graph::{build_graph, source_histogram, GraphOptions, Occ, RelKey, TaskGraph};
use crate::merge::{merge, no_merge, MergeOutcome};
use crate::obs::{build_report, CacheObs, IncrementalObs, Phases, ReportInputs, RunReport};
use crate::parallel::execute_graph_parallel;
use crate::pipeline::MediatorRun;
use crate::sim::NetworkModel;
use crate::unfold::{unfold, CutOff, FrontierSite};
use aig_core::spec::Aig;
use aig_core::{compile_constraints, decompose_queries};
use aig_relstore::{Catalog, SourceId, Value};
use aig_xml::{validate, Dtd};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The argument-independent half of [`crate::pipeline::MediatorOptions`]:
/// everything the **Prepare** stage consumes. Two requests with equal
/// `PlanOptions` (and equal AIG and depth) can share one [`PreparedPlan`].
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Initial unfolding depth for recursive AIGs ("a user-supplied estimate
    /// d of the maximum depth", §5.5).
    pub unfold_depth: usize,
    /// Upper bound for frontier-driven re-unfolding.
    pub max_depth: usize,
    /// Truncate at the depth (the paper's §6 setup) or detect and extend.
    pub cutoff: CutOff,
    /// Whether query merging (§5.4) is applied when reporting response time.
    pub merging: bool,
    /// Whether ship-cut column-liveness profiles are computed for the task
    /// graph (see [`crate::shipcut`]) and applied to the transfer model.
    pub shipcut: bool,
    pub graph: GraphOptions,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            unfold_depth: 3,
            max_depth: 64,
            cutoff: CutOff::Frontier,
            merging: true,
            shipcut: true,
            graph: GraphOptions::default(),
        }
    }
}

/// The per-request execution policy now lives beside the options it backs
/// (see [`crate::exec::ExecPolicy`]); re-exported here because the policy
/// is the per-request half of [`crate::pipeline::MediatorOptions`] and
/// callers have always imported it from this module.
pub use crate::exec::ExecPolicy;

/// An immutable, argument-independent evaluation plan: the unfolded AIG,
/// its task graph, the per-source execution sequences, and the
/// estimate-based schedule/merge outcome. Built once by [`prepare`], shared
/// across requests behind an `Arc`, and executed any number of times with
/// different argument bindings by [`execute_prepared`].
#[derive(Debug)]
pub struct PreparedPlan {
    fingerprint: u64,
    /// The unfolding depth the plan was prepared at.
    pub depth: usize,
    /// The plan-side options the plan was prepared under.
    pub options: PlanOptions,
    /// Network model the estimate-based schedule was computed under.
    pub network: NetworkModel,
    /// The compiled, decomposed (but not yet unfolded) AIG — kept so
    /// [`deepen`] can re-unfold without repeating compilation.
    specialized: Arc<Aig>,
    /// The DTD of the *source* AIG, used to validate execution output.
    dtd: Dtd,
    /// The unfolded, specialized AIG the task graph was built from.
    pub aig: Aig,
    /// Cut-off sites of the unfolding (empty when nothing recursed deeper).
    pub frontier: Vec<FrontierSite>,
    pub graph: TaskGraph,
    /// Per-source task sequences in topological order — the static input of
    /// the parallel executor.
    pub per_source: HashMap<SourceId, Vec<usize>>,
    /// Estimate-based response time without merging (§5.2–5.3).
    pub est_baseline: MergeOutcome,
    /// Estimate-based response time of the final plan (merged when
    /// `options.merging`; equals the baseline otherwise, §5.4).
    pub est_merged: MergeOutcome,
    /// Ship-cut column-liveness profiles of the task graph (None when
    /// `options.shipcut` is off). Shared with every execution's options.
    pub shipcut: Option<Arc<crate::shipcut::ShipCut>>,
    /// Per-task read-sets: which `(source, table)` pairs (and columns) each
    /// task's queries consume — the dependency index of incremental
    /// re-evaluation on source deltas (see [`crate::delta`]).
    pub read_sets: crate::delta::ReadSets,
    /// Wall-clock seconds preparation took (the cost a cache hit saves).
    pub prepare_secs: f64,
}

impl PreparedPlan {
    /// The structural fingerprint of the source AIG (see
    /// [`Aig::fingerprint`]) — the cache-key component identifying *what*
    /// the plan evaluates.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Estimate-based response time of the final (possibly merged) plan.
    pub fn predicted_response_secs(&self) -> f64 {
        self.est_merged.response_secs
    }

    /// Estimate-based response time without merging.
    pub fn predicted_unmerged_secs(&self) -> f64 {
        self.est_baseline.response_secs
    }

    /// Pair merges the estimate-based optimizer applied.
    pub fn predicted_merges(&self) -> usize {
        self.est_merged.merges
    }
}

/// Per-source sequences in topological order (dependency-safe input for the
/// parallel executor when no schedule over raw task ids is available).
pub fn topo_per_source(graph: &TaskGraph) -> HashMap<SourceId, Vec<usize>> {
    let mut per_source: HashMap<SourceId, Vec<usize>> = HashMap::new();
    for &id in &graph.topo {
        per_source
            .entry(graph.tasks[id].source)
            .or_default()
            .push(id);
    }
    per_source
}

/// The **Prepare** stage: compiles constraints into guards, decomposes
/// multi-source queries, unfolds recursion to `depth`, builds the task
/// graph, and computes the estimate-based schedule and merge. The phases
/// are charged to `phases` under their pipeline names
/// (`compile_constraints`, `decompose`, `unfold`, `graph_build`,
/// `shipcut`, `plan` — liveness analysis precedes planning so the
/// estimate-based cost model prices pruned shipments).
pub fn prepare(
    aig: &Aig,
    catalog: &Catalog,
    depth: usize,
    options: &PlanOptions,
    net: &NetworkModel,
    phases: &mut Phases,
) -> Result<PreparedPlan, MediatorError> {
    let start = Instant::now();
    let compiled = phases.time("compile_constraints", || {
        if aig.constraints.is_empty() {
            Ok(aig.clone())
        } else {
            compile_constraints(aig)
        }
    })?;
    let (specialized, _report) = phases.time("decompose", || decompose_queries(&compiled))?;
    prepare_unfolded(
        aig.fingerprint(),
        Arc::new(specialized),
        aig.dtd.clone(),
        catalog,
        depth,
        options,
        net,
        phases,
        start,
    )
}

/// Re-unfolds an existing plan to a greater depth, reusing its compiled and
/// decomposed AIG — the frontier-promotion path of the plan cache (§5.5):
/// only `unfold`, `graph_build`, `shipcut`, and `plan` run again.
pub fn deepen(
    plan: &PreparedPlan,
    catalog: &Catalog,
    depth: usize,
    phases: &mut Phases,
) -> Result<PreparedPlan, MediatorError> {
    prepare_unfolded(
        plan.fingerprint,
        plan.specialized.clone(),
        plan.dtd.clone(),
        catalog,
        depth,
        &plan.options,
        &plan.network,
        phases,
        Instant::now(),
    )
}

#[allow(clippy::too_many_arguments)]
fn prepare_unfolded(
    fingerprint: u64,
    specialized: Arc<Aig>,
    dtd: Dtd,
    catalog: &Catalog,
    depth: usize,
    options: &PlanOptions,
    net: &NetworkModel,
    phases: &mut Phases,
    start: Instant,
) -> Result<PreparedPlan, MediatorError> {
    let depth = depth.max(1);
    let unfolded = phases.time("unfold", || unfold(&specialized, depth, options.cutoff))?;
    let graph = phases.time("graph_build", || {
        build_graph(&unfolded.aig, catalog, &options.graph)
    })?;
    // Liveness analysis runs *before* estimate-based planning: the cost
    // model must see the shipment sizes a pruning shipper will actually put
    // on the wire, or Merge/Schedule optimize against full-width relations
    // that never cross the network.
    let shipcut = options.shipcut.then(|| {
        phases.time("shipcut", || {
            Arc::new(crate::shipcut::ShipCut::analyze(&unfolded.aig, &graph))
        })
    });
    let (est_baseline, est_merged) = phases.time("plan", || {
        let mut costs = estimated_costs(&graph);
        if let Some(cut) = &shipcut {
            for (id, cost) in costs.iter_mut().enumerate() {
                if let Some(fraction) = cut.estimated_live_fraction(id, &unfolded.aig, &graph) {
                    cost.out_bytes *= fraction;
                }
            }
        }
        let cg = CostGraph::from_task_graph(&graph, &costs).contract_passthrough();
        let baseline = no_merge(&cg, net);
        let merged = if options.merging {
            merge(&cg, net, options.graph.cost_model.per_query_overhead_secs)
        } else {
            baseline.clone()
        };
        (baseline, merged)
    });
    let per_source = topo_per_source(&graph);
    // Read-set analysis is a linear scan of the task kinds' query ASTs —
    // cheap enough to run untimed (the pinned prepare phase list stays
    // exactly `compile_constraints, decompose, unfold, graph_build,
    // shipcut, plan`).
    let read_sets = crate::delta::ReadSets::analyze(&graph);
    Ok(PreparedPlan {
        fingerprint,
        depth,
        options: options.clone(),
        network: net.clone(),
        specialized,
        dtd,
        aig: unfolded.aig,
        frontier: unfolded.frontier,
        graph,
        per_source,
        est_baseline,
        est_merged,
        shipcut,
        read_sets,
        prepare_secs: start.elapsed().as_secs_f64(),
    })
}

/// What one execution of a prepared plan produced.
pub enum ExecuteOutcome {
    /// The run finished; the document, metrics and report are final.
    Complete(Box<(MediatorRun, RunReport)>),
    /// The recursion frontier is still producing data: the plan's depth is
    /// insufficient and the caller must re-prepare deeper (the paper's
    /// runtime re-unrolling, §5.5 — the plan cache's promotion path).
    FrontierExtend,
}

/// A completed execution with its relation store and per-task measurements
/// still attached — what the incremental-snapshot path of
/// [`crate::service::Mediator`] caches alongside the run.
#[derive(Debug)]
pub(crate) struct ExecutedRun {
    pub run: MediatorRun,
    pub report: RunReport,
    pub store: crate::exec::RelStore,
    pub measured: Vec<crate::exec::Measured>,
}

/// [`ExecuteOutcome`] with the store/measurements retained (crate-internal:
/// the public API returns only the run and report).
pub(crate) enum FullOutcome {
    Complete(Box<ExecutedRun>),
    FrontierExtend,
}

/// The **Execute** stage: binds `args`, runs the plan's task graph through
/// the sequential or parallel executor, checks the recursion frontier, tags
/// the document, validates it, and runs the measured-cost response-time
/// simulation. `exec_opts` should be built once per run via
/// [`ExecOptions::new`] (with the fault plan bound and `eval_scale`
/// copied from the plan-side graph options). `rounds` counts the
/// prepare/execute rounds of the enclosing request; `cache` is the plan
/// cache's observability snapshot (default when no cache is involved).
#[allow(clippy::too_many_arguments)]
pub fn execute_prepared(
    plan: &PreparedPlan,
    catalog: &Catalog,
    args: &[(&str, Value)],
    policy: &ExecPolicy,
    exec_opts: &ExecOptions,
    phases: &mut Phases,
    rounds: usize,
    cache: CacheObs,
) -> Result<ExecuteOutcome, MediatorError> {
    match execute_prepared_full(
        plan,
        catalog,
        args,
        policy,
        exec_opts,
        phases,
        rounds,
        cache,
        IncrementalObs::default(),
    )? {
        FullOutcome::Complete(done) => {
            Ok(ExecuteOutcome::Complete(Box::new((done.run, done.report))))
        }
        FullOutcome::FrontierExtend => Ok(ExecuteOutcome::FrontierExtend),
    }
}

/// [`execute_prepared`] with the relation store and per-task measurements
/// retained in the outcome — the execution path the service's incremental
/// snapshot cache runs, so a completed run can seed a snapshot. The
/// `incremental` ledger is threaded into the report verbatim (default on
/// non-incremental requests).
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_prepared_full(
    plan: &PreparedPlan,
    catalog: &Catalog,
    args: &[(&str, Value)],
    policy: &ExecPolicy,
    exec_opts: &ExecOptions,
    phases: &mut Phases,
    rounds: usize,
    cache: CacheObs,
    incremental: IncrementalObs,
) -> Result<FullOutcome, MediatorError> {
    // The liveness profiles are part of the prepared plan; bind them into
    // this run's options so both executors account ship images with them.
    let exec_opts = &ExecOptions {
        shipcut: plan.shipcut.clone(),
        ..exec_opts.clone()
    };
    let exec: ExecResult = phases.time("execute", || {
        if policy.parallel_exec {
            execute_graph_parallel(
                &plan.aig,
                catalog,
                &plan.graph,
                args,
                exec_opts,
                &plan.per_source,
            )
        } else {
            execute_graph(&plan.aig, catalog, &plan.graph, args, exec_opts)
        }
    })?;
    finish_run(FinishInputs {
        plan,
        catalog,
        policy,
        exec_opts,
        phases,
        rounds,
        cache,
        exec,
        tree_override: None,
        scope: None,
        incremental,
    })
}

/// Everything the shared run finisher consumes (see [`finish_run`]).
pub(crate) struct FinishInputs<'a> {
    pub plan: &'a PreparedPlan,
    pub catalog: &'a Catalog,
    pub policy: &'a ExecPolicy,
    pub exec_opts: &'a ExecOptions,
    pub phases: &'a mut Phases,
    pub rounds: usize,
    pub cache: CacheObs,
    pub exec: ExecResult,
    /// A pre-built document (the incremental retag path); `None` tags from
    /// the store under the `tag` phase.
    pub tree_override: Option<aig_xml::XmlTree>,
    /// When `Some`, the document-level integrity check runs only the
    /// constraints whose element tags intersect this scope (the incremental
    /// path's changed-subtree tags); `None` checks the full set.
    pub scope: Option<std::collections::HashSet<String>>,
    /// The delta re-evaluation ledger for the report.
    pub incremental: IncrementalObs,
}

/// The shared tail of every execution path — frontier check, tagging (or
/// the supplied retagged tree), validation, the document-level constraint
/// check (full or scoped), the measured-cost response-time simulation, and
/// report construction. Both the cold full run ([`execute_prepared_full`])
/// and the incremental subgraph re-execution ([`crate::delta`]) end here,
/// so the two paths cannot drift apart.
pub(crate) fn finish_run(inputs: FinishInputs<'_>) -> Result<FullOutcome, MediatorError> {
    let FinishInputs {
        plan,
        catalog,
        policy,
        exec_opts,
        phases,
        rounds,
        cache,
        exec,
        tree_override,
        scope,
        incremental,
    } = inputs;
    let ExecResult {
        store,
        measured,
        resilience,
        mut integrity,
        sched,
        batch,
    } = exec;

    // Frontier check: if the deepest unfolded level still produced
    // instances, the data recurses deeper than the plan's depth — the
    // caller must prepare a deeper plan (§5.5).
    if plan.options.cutoff == CutOff::Frontier && !plan.frontier.is_empty() {
        let extend = phases.time("frontier_check", || -> Result<bool, MediatorError> {
            for site in &plan.frontier {
                let Some(parent) = plan.aig.elem(&site.parent) else {
                    continue;
                };
                // The frontier parent's base instances: non-empty means
                // the cut could have produced children.
                let occ = plan
                    .graph
                    .bindings
                    .iter()
                    .find(|(_, b)| b.elem == parent)
                    .map(|(occ, _)| occ.clone())
                    .unwrap_or(Occ::mat(parent));
                let base = store.get(&RelKey::Instances(occ.base))?;
                if !base.is_empty() {
                    return Ok(true);
                }
            }
            Ok(false)
        })?;
        if extend {
            return Ok(FullOutcome::FrontierExtend);
        }
    }

    // -- Tagging -------------------------------------------------------------
    let tree = match tree_override {
        Some(tree) => tree,
        None => phases.time("tag", || {
            crate::tagging::tag_document(&plan.aig, &plan.graph, &store)
        })?,
    };
    if policy.validate_output {
        phases.time("validate", || {
            validate(&tree, &plan.dtd)
                .map_err(|e| MediatorError::Internal(format!("output validation: {e}")))
        })?;
    }
    // -- Integrity defense: the document-level constraint check --------------
    // The second detection layer (after the task-boundary guards inside the
    // executors): the tagged document is checked against the AIG's key and
    // inclusion constraints. This is what catches corruptions invisible at
    // the relation boundary, e.g. a stale replica whose truncated answer
    // breaks an inclusion between elements assembled from different tables.
    if policy.check_integrity {
        let violation = phases.time("constraint_check", || match &scope {
            // The incremental path narrows the check to the constraints
            // whose element tags intersect the retagged subtrees; elements
            // outside the scope are verbatim copies of an already-checked
            // document.
            Some(tags) => plan.aig.constraints.scoped(tags).check_first(&tree),
            None => plan.aig.constraints.check_first(&tree),
        });
        if let Some(v) = violation {
            // Reconcile the ledger before surfacing: any injection still
            // marked undetected is claimed by the constraint layer.
            integrity.resolve_undetected(&v.constraint);
            let culprit = integrity
                .events
                .iter()
                .find(|e| e.outcome == IntegrityOutcome::DetectedByConstraint);
            return Err(MediatorError::IntegrityViolation {
                task: culprit
                    .map(|e| e.label.clone())
                    .unwrap_or_else(|| "document".to_string()),
                source: culprit.map(|e| e.source.clone()).unwrap_or_default(),
                table: culprit.map(|e| e.table.clone()).unwrap_or_default(),
                constraint: v.constraint,
                value: v.value,
            });
        }
    }

    // -- Response-time simulation (§5.2-5.4) ---------------------------------
    let (costs, cg) = phases.time("simulate", || {
        let costs = measured_costs(
            &plan.graph,
            &measured,
            plan.options.graph.cost_model.per_query_overhead_secs,
            plan.options.graph.eval_scale,
        );
        let cg = CostGraph::from_task_graph(&plan.graph, &costs).contract_passthrough();
        (costs, cg)
    });
    let baseline = phases.time("schedule", || no_merge(&cg, &policy.network));
    let merged: MergeOutcome = phases.time("merge", || {
        if plan.options.merging {
            merge(
                &cg,
                &policy.network,
                plan.options.graph.cost_model.per_query_overhead_secs,
            )
        } else {
            baseline.clone()
        }
    });
    let exec_secs: f64 = measured.iter().map(|m| m.secs).sum();
    let per_source = source_histogram(&plan.graph, catalog);
    let total_secs = phases.elapsed_secs();
    let report = build_report(
        ReportInputs {
            graph: &plan.graph,
            catalog,
            measured: &measured,
            costs: &costs,
            baseline: &baseline,
            merged: &merged,
            net: &policy.network,
            depth: plan.depth,
            unfold_rounds: rounds,
            parallel_exec: policy.parallel_exec,
            resilience: &resilience,
            integrity: &integrity,
            check_integrity: policy.check_integrity,
            fault_seed: exec_opts.faults.as_ref().map(|p| p.seed()),
            sched: &sched,
            cache,
            shipcut_enabled: plan.shipcut.is_some(),
            batch,
            incremental,
        },
        std::mem::take(phases),
        total_secs,
    );
    let run = MediatorRun {
        tree,
        depth: plan.depth,
        tasks: plan.graph.len(),
        source_queries: plan.graph.source_query_count,
        response_unmerged_secs: baseline.response_secs,
        response_merged_secs: merged.response_secs,
        merges: merged.merges,
        per_source,
        exec_secs,
    };
    Ok(FullOutcome::Complete(Box::new(ExecutedRun {
        run,
        report,
        store,
        measured,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig_core::paper::{mini_hospital_catalog, sigma0};

    #[test]
    fn prepare_is_argument_independent_and_reusable() {
        let aig = sigma0().unwrap();
        let catalog = mini_hospital_catalog().unwrap();
        let options = PlanOptions::default();
        let net = NetworkModel::default();
        let mut phases = Phases::new();
        let plan = prepare(&aig, &catalog, 3, &options, &net, &mut phases).unwrap();
        assert_eq!(plan.depth, 3);
        assert_eq!(plan.fingerprint(), aig.fingerprint());
        assert!(plan.graph.len() > 10);
        assert!(plan.predicted_response_secs() > 0.0);
        assert!(plan.predicted_response_secs() <= plan.predicted_unmerged_secs());
        // Prepare-stage phases were charged; no execute-stage phase ran.
        let names: Vec<&str> = phases.samples().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "compile_constraints",
                "decompose",
                "unfold",
                "graph_build",
                "shipcut",
                "plan"
            ]
        );
        assert!(plan.shipcut.is_some());
    }

    #[test]
    fn deepen_reuses_the_specialized_aig() {
        let aig = sigma0().unwrap();
        let catalog = mini_hospital_catalog().unwrap();
        let options = PlanOptions {
            unfold_depth: 1,
            ..PlanOptions::default()
        };
        let net = NetworkModel::default();
        let mut phases = Phases::new();
        let shallow = prepare(&aig, &catalog, 1, &options, &net, &mut phases).unwrap();
        let mut deepen_phases = Phases::new();
        let deep = deepen(&shallow, &catalog, 2, &mut deepen_phases).unwrap();
        assert_eq!(deep.depth, 2);
        assert_eq!(deep.fingerprint(), shallow.fingerprint());
        assert!(deep.graph.len() > shallow.graph.len());
        // Deepening never recompiles or re-decomposes.
        let names: Vec<&str> = deepen_phases
            .samples()
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, ["unfold", "graph_build", "shipcut", "plan"]);
    }

    /// With ship-cut on, the estimate-based cost graph prices pruned
    /// shipments: at least one edge gets strictly cheaper than under the
    /// full-width estimates, so Merge/Schedule optimize against what the
    /// executors will actually account on the wire.
    #[test]
    fn estimates_price_pruned_shipments() {
        let aig = sigma0().unwrap();
        let catalog = mini_hospital_catalog().unwrap();
        let net = NetworkModel::default();
        let on = PlanOptions::default();
        let off = PlanOptions {
            shipcut: false,
            ..PlanOptions::default()
        };
        let plan_on = prepare(&aig, &catalog, 3, &on, &net, &mut Phases::new()).unwrap();
        let plan_off = prepare(&aig, &catalog, 3, &off, &net, &mut Phases::new()).unwrap();
        let edge_bytes = |p: &PreparedPlan| -> f64 {
            p.est_baseline
                .graph
                .deps
                .iter()
                .flatten()
                .map(|(_, b)| *b)
                .sum()
        };
        assert!(
            edge_bytes(&plan_on) < edge_bytes(&plan_off),
            "no estimate-phase edge shrank under pruning: {} >= {}",
            edge_bytes(&plan_on),
            edge_bytes(&plan_off)
        );
        // Cheaper transfers can only help the estimate-based response time.
        assert!(plan_on.predicted_response_secs() <= plan_off.predicted_response_secs() + 1e-12);
    }

    #[test]
    fn identical_aigs_built_separately_share_a_fingerprint() {
        let a = sigma0().unwrap();
        let b = sigma0().unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
