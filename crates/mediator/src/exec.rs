//! Set-oriented execution of the task graph (paper §5.1, execution phase).
//!
//! "The query plan is executed to produce a set of output relations — a
//! relational representation of the XML document." Each task runs once over
//! whole temporary tables; per-task wall-clock times are recorded so that
//! the response-time simulation (§5.2) can use measured rather than
//! estimated query costs, mirroring the paper's methodology of running real
//! queries and simulating the transfers.

use crate::error::MediatorError;
use crate::faults::{FaultEnv, FaultPlan, IntegrityLog, ResilienceLog, RetryPolicy, TaskFaultCtx};
use crate::graph::{
    resolve_syn_key, Binding, Occ, ParamInput, RelKey, ScalarBind, Task, TaskGraph, TaskKind,
    VectorQuery,
};
use crate::integrity;
use crate::shipcut::ShipCut;
use aig_core::attrs::FieldType;
use aig_core::copyelim::{resolve_scalar, ResolvedScalar};
use aig_core::spec::{Aig, ElemIdx, FieldRule, GuardKind, Prod, SetExpr, ValueExpr};
use aig_core::AigError;
use aig_relstore::intern;
use aig_relstore::par::stable_sort_rows_with;
use aig_relstore::{Catalog, Relation, SourceId, Value};
use aig_sql::{
    execute_streamed as sql_execute_streamed, execute_tuned as sql_execute_tuned,
    IncrementalDistinct, ParamValue, Params,
};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// How the parallel executor orders tasks at each source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduling {
    /// Walk the planned per-source sequences as given; each worker blocks
    /// on its next planned task even when later tasks are already ready.
    #[default]
    Static,
    /// Per-source ready queues: an idle worker picks the highest-priority
    /// *ready* task at its source, with priorities recomputed from a hybrid
    /// cost graph — measured actuals for completed tasks, estimates for the
    /// rest. The live counterpart of
    /// [`crate::schedule::dynamic_response_time`] (paper §5.5/§7).
    Dynamic,
}

/// One runtime pick of the dynamic scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskPick {
    pub task: usize,
    /// Effective source the task ran at.
    pub source: SourceId,
    /// Position the static plan assigned the task at its source.
    pub planned_pos: usize,
    /// Position the task actually ran at (per-source pick counter).
    pub actual_pos: usize,
    /// The task's priority (hybrid `level`) at pick time.
    pub priority: f64,
}

/// What the scheduler did during one execution: empty and `dynamic: false`
/// under static scheduling and the sequential executor.
#[derive(Debug, Clone, Default)]
pub struct SchedLog {
    /// True when the dynamic (ready-queue) scheduler ran.
    pub dynamic: bool,
    /// Every dynamic pick, in pick order.
    pub picks: Vec<TaskPick>,
}

impl SchedLog {
    /// Picks that ran at a different per-source position than the static
    /// plan assigned them.
    pub fn deviations(&self) -> Vec<TaskPick> {
        self.picks
            .iter()
            .copied()
            .filter(|p| p.planned_pos != p.actual_pos)
            .collect()
    }
}

/// The per-request half of [`crate::pipeline::MediatorOptions`]: everything
/// the **Execute** stage consumes, and the single source of truth for the
/// executor switches (retry, scheduling, threads, integrity, batching). A
/// change of policy never invalidates a cached plan — the same
/// [`crate::plan::PreparedPlan`] serves strict and lenient requests alike.
#[derive(Debug, Clone)]
pub struct ExecPolicy {
    /// Whether compiled-constraint guards abort the run.
    pub check_guards: bool,
    /// Whether the output is validated against the DTD (sanity check).
    pub validate_output: bool,
    /// Whether the integrity defense runs: per-task guard checks on shipped
    /// relations plus the key/inclusion constraint check on the tagged
    /// document, with detections recorded in the report's integrity ledger.
    pub check_integrity: bool,
    /// Execute with the per-source worker threads of [`crate::parallel`]
    /// instead of the sequential executor.
    pub parallel_exec: bool,
    pub network: crate::sim::NetworkModel,
    /// Deterministic fault injection for source tasks (None = no faults).
    /// This is the *configuration*; the executors consume the bound
    /// [`ExecOptions::faults`] plan.
    pub faults: Option<crate::faults::FaultConfig>,
    /// Retry/backoff/timeout policy when faults are injected.
    pub retry: RetryPolicy,
    /// Static (planned sequences) or dynamic (live ready-queue) scheduling
    /// in the parallel executor; ignored by the sequential executor.
    pub scheduling: Scheduling,
    /// Worker-thread bound for the partitioned kernels (hash join,
    /// canonical sort, dedup) inside each task. Results are byte-identical
    /// for any value; `1` keeps every kernel sequential.
    pub threads: usize,
    /// Minimum input size (rows) before a partitioned kernel engages;
    /// smaller inputs take the sequential path outright. Results are
    /// byte-identical for any value — this only moves the crossover point
    /// (tests pin it to force either path on small fixtures).
    pub par_threshold: usize,
    /// Per-request deadline budget in seconds (None = unbounded). The
    /// clock starts when a request enters execution; expiry surfaces as
    /// [`crate::MediatorError::DeadlineExceeded`] instead of hanging.
    pub deadline_secs: Option<f64>,
    /// Chunked shipment (streaming batch execution, see [`crate::batch`]):
    /// task outputs cross the ship seam in `batch_rows`-row batches and
    /// source queries feed hash-join builds and dedup incrementally.
    /// Stores and documents are byte-identical either way; off by default.
    pub batching: bool,
    /// Batch size (rows) of the chunked shipment seam; only consulted when
    /// `batching` is on. `usize::MAX` degenerates to the materializing
    /// one-batch shipment.
    pub batch_rows: usize,
    /// Incremental re-evaluation on source deltas (see [`crate::delta`]):
    /// when on, the [`crate::service::Mediator`] keeps a post-run snapshot
    /// (store + document + per-task read-sets) per prepared plan and, after
    /// a [`aig_relstore::SourceDelta`], re-runs only the task subgraph
    /// whose read-sets intersect the delta's touched tables — splicing the
    /// re-shipped sub-relations into the cached store and re-tagging only
    /// the affected document subtrees. Documents are byte-identical to a
    /// cold full run either way; off by default.
    pub incremental: bool,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            check_guards: true,
            validate_output: true,
            check_integrity: false,
            parallel_exec: false,
            network: crate::sim::NetworkModel::default(),
            faults: None,
            retry: RetryPolicy::default(),
            scheduling: Scheduling::default(),
            threads: 1,
            par_threshold: aig_relstore::par::PAR_THRESHOLD,
            deadline_secs: None,
            batching: false,
            batch_rows: 2048,
            incremental: false,
        }
    }
}

/// Execution options: a thin view of an [`ExecPolicy`] plus the per-run
/// state the caller must bind (the catalog-bound fault plan, calibration,
/// pacing, ship-cut profiles, the started deadline clock, and the
/// cross-request gate). All policy switches are read through the accessor
/// methods, so there is exactly one source of truth for them.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// The shared policy (retry, scheduling, threads, par_threshold,
    /// guard/integrity switches, network model, batching knobs).
    pub policy: ExecPolicy,
    /// Deterministic fault injection bound to a catalog (None = no
    /// faults). Bound by the caller from [`ExecPolicy::faults`].
    pub faults: Option<FaultPlan>,
    /// Calibration factor converting measured wall-clock seconds into the
    /// task estimates' cost units when the dynamic scheduler patches
    /// actuals into its hybrid graph (mirrors
    /// [`crate::graph::GraphOptions::eval_scale`]).
    pub eval_scale: f64,
    /// Optional per-task pacing: task `i` sleeps `pace[i]` seconds inside
    /// its measured execution window. Lets benches and tests emulate slow
    /// autonomous sources with controlled, reproducible durations.
    pub pace: Option<Vec<f64>>,
    /// Ship-cut liveness profiles (see [`crate::shipcut`]): when set, each
    /// task's [`Measured::ship_bytes`] is the size of the column-pruned
    /// (and possibly deduplicated) ship image of its output instead of the
    /// full relation. Stores and documents are unaffected either way.
    pub shipcut: Option<Arc<ShipCut>>,
    /// Per-request deadline budget: no task attempt starts past it, sleeps
    /// are clamped to it, and expiry surfaces as
    /// [`MediatorError::DeadlineExceeded`]. Bound per request
    /// ([`ExecPolicy::deadline_secs`] only carries the budget; the clock
    /// starts when the request does).
    pub deadline: Option<crate::faults::Deadline>,
    /// Cross-request source arbiter: concurrent requests sharing a gate
    /// serialize same-source task execution, earliest absolute deadline
    /// first (see [`crate::schedule::EdfGate`]). None = no arbitration.
    pub gate: Option<Arc<crate::schedule::EdfGate>>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions::new(ExecPolicy::default())
    }
}

impl ExecOptions {
    /// Wraps a policy with nothing bound yet — the canonical constructor.
    pub fn new(policy: ExecPolicy) -> ExecOptions {
        ExecOptions {
            policy,
            faults: None,
            eval_scale: 1.0,
            pace: None,
            shipcut: None,
            deadline: None,
            gate: None,
        }
    }

    pub fn check_guards(&self) -> bool {
        self.policy.check_guards
    }

    pub fn check_integrity(&self) -> bool {
        self.policy.check_integrity
    }

    pub fn retry(&self) -> &RetryPolicy {
        &self.policy.retry
    }

    pub fn network(&self) -> &crate::sim::NetworkModel {
        &self.policy.network
    }

    pub fn scheduling(&self) -> Scheduling {
        self.policy.scheduling
    }

    /// Kernel thread bound, floored at 1 as an executor safety net; the
    /// options builder rejects zero outright (`ConfigError`).
    pub fn threads(&self) -> usize {
        self.policy.threads.max(1)
    }

    /// Partitioned-kernel crossover, floored at 1 as an executor safety
    /// net; the options builder rejects zero outright (`ConfigError`).
    pub fn par_threshold(&self) -> usize {
        self.policy.par_threshold.max(1)
    }

    /// Whether chunked shipment (streaming batch execution) is on.
    pub fn batching(&self) -> bool {
        self.policy.batching
    }

    /// Batch size of the chunked shipment seam, floored at 1; the options
    /// builder rejects zero outright (`ConfigError`).
    pub fn batch_rows(&self) -> usize {
        self.policy.batch_rows.max(1)
    }

    /// Whether incremental re-evaluation on source deltas is on.
    pub fn incremental(&self) -> bool {
        self.policy.incremental
    }

    /// Returns the options with the scheduling mode replaced.
    pub fn with_scheduling(mut self, scheduling: Scheduling) -> ExecOptions {
        self.policy.scheduling = scheduling;
        self
    }

    /// Returns the options with the kernel thread bound replaced.
    pub fn with_threads(mut self, threads: usize) -> ExecOptions {
        self.policy.threads = threads;
        self
    }

    /// Returns the options with the chunked-shipment knobs replaced.
    pub fn with_batching(mut self, batching: bool, batch_rows: usize) -> ExecOptions {
        self.policy.batching = batching;
        self.policy.batch_rows = batch_rows;
        self
    }
}

/// Measured per-task execution: wall-clock seconds plus actual input and
/// output sizes and (for the parallel executor) queue/wait accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measured {
    pub secs: f64,
    pub out_rows: f64,
    pub out_bytes: f64,
    /// Dictionary-encoded wire size of the full output relation — what an
    /// unpruned shipment of the output would cost on the wire. Note this can
    /// exceed the raw `out_bytes` for small all-distinct relations (the
    /// dictionary is the data plus per-row codes).
    pub wire_bytes: f64,
    /// Bytes of the output's *ship image*: the column-pruned (and, for
    /// duplicate-insensitive consumers, deduplicated) relation a ship-cut
    /// shipper puts on the wire. Equal to `wire_bytes` when ship-cut is off;
    /// never exceeds it (pruning drops columns and rows, and the dictionary
    /// encoding is monotone under both).
    pub ship_bytes: f64,
    /// Batches the output crossed the ship seam in: 1 per shipped output
    /// when materializing, `ceil(image_rows / batch_rows)` under chunked
    /// shipment (0 for guards and empty batched images).
    pub batches: u64,
    /// Rows read from dependency relations (distinct input relations).
    pub in_rows: f64,
    /// Seconds the task spent waiting for its inputs before running
    /// (always zero under the sequential executor).
    pub wait_secs: f64,
    /// Offset of the task's start from the beginning of the execution.
    pub start_secs: f64,
}

/// Read access to the relations produced so far. The sequential executor
/// reads its own [`RelStore`]; the parallel executor (one thread per data
/// source, see [`crate::parallel`]) reads completed tasks' write-once slots.
pub trait RelSource {
    fn rel(&self, key: &RelKey) -> Result<&Relation, MediatorError>;
}

/// All relations produced by an execution. `Clone` so the service can
/// retain a completed run's store as the splice base of incremental
/// re-evaluation (relations are columnar-interned; cloning is cheap
/// relative to re-running the graph).
#[derive(Debug, Clone, Default)]
pub struct RelStore {
    rels: HashMap<RelKey, Relation>,
}

impl RelSource for RelStore {
    fn rel(&self, key: &RelKey) -> Result<&Relation, MediatorError> {
        self.get(key)
    }
}

impl RelStore {
    pub fn get(&self, key: &RelKey) -> Result<&Relation, MediatorError> {
        self.rels.get(key).ok_or_else(|| {
            let mut present: Vec<String> = self.rels.keys().map(|k| format!("{k:?}")).collect();
            present.sort();
            let shown = present.len().min(12);
            let more = if present.len() > shown {
                format!(" … +{}", present.len() - shown)
            } else {
                String::new()
            };
            MediatorError::Internal(format!(
                "missing relation {key:?}; {} present: [{}{more}]",
                present.len(),
                present[..shown].join(", "),
            ))
        })
    }

    pub fn insert(&mut self, key: RelKey, rel: Relation) {
        self.rels.insert(key, rel);
    }

    pub fn len(&self) -> usize {
        self.rels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }
}

/// The result of executing a task graph.
#[derive(Debug)]
pub struct ExecResult {
    pub store: RelStore,
    /// Per task (parallel to `graph.tasks`).
    pub measured: Vec<Measured>,
    /// What the fault layer did: injected-fault events and re-plans.
    pub resilience: ResilienceLog,
    /// What the wrong-answer layer did: injected corruptions and how each
    /// was resolved (masked, detected, or undetected).
    pub integrity: IntegrityLog,
    /// What the scheduler did (dynamic picks; empty under static).
    pub sched: SchedLog,
    /// What the chunked-shipment seam did (batch counts, peak resident
    /// rows); `enabled: false` with one batch per output when off.
    pub batch: crate::batch::BatchLog,
}

/// The `__occ` tag of rows produced by the generator of `(occ, item)`.
pub fn occ_tag(aig: &Aig, occ: &Occ, item: usize) -> String {
    format!("{}#{item}", occ.key(aig))
}

/// The `__occ` tag of branch-child rows of a choice occurrence.
pub fn branch_tag(aig: &Aig, occ: &Occ, branch: usize) -> String {
    format!("{}#b{branch}", occ.key(aig))
}

/// Resolves hard outages against the catalog before tasks run: every dead
/// source that owns tasks is either redirected to a live declared replica
/// (yielding a failover catalog view and re-homed effective sources) or the
/// run fails with a structured error naming the lost tasks. Sources are
/// resolved in id order, so the outcome is deterministic.
pub(crate) fn resolve_outages(
    catalog: &Catalog,
    graph: &TaskGraph,
    plan: &FaultPlan,
    effective: &mut [SourceId],
) -> Result<Option<Catalog>, MediatorError> {
    let mut active: Option<Catalog> = None;
    let mut sources: Vec<SourceId> = graph.tasks.iter().map(|t| t.source).collect();
    sources.sort();
    sources.dedup();
    for sid in sources {
        if !plan.source_down(sid) {
            continue;
        }
        let cat = active.as_ref().unwrap_or(catalog);
        match cat.replica_of(sid).filter(|r| !plan.source_down(*r)) {
            Some(replica) => {
                active = Some(cat.failover(sid).expect("replica is declared"));
                for (id, task) in graph.tasks.iter().enumerate() {
                    if task.source == sid {
                        effective[id] = replica;
                    }
                }
            }
            None => {
                let lost_tasks: Vec<String> = graph
                    .topo
                    .iter()
                    .filter(|&&id| graph.tasks[id].source == sid)
                    .map(|&id| graph.tasks[id].label.clone())
                    .collect();
                return Err(MediatorError::SourceUnavailable {
                    source: catalog.source(sid).name().to_string(),
                    lost_tasks,
                });
            }
        }
    }
    Ok(active)
}

/// Executes every task of `graph` in topological order.
pub fn execute_graph(
    aig: &Aig,
    catalog: &Catalog,
    graph: &TaskGraph,
    args: &[(&str, Value)],
    opts: &ExecOptions,
) -> Result<ExecResult, MediatorError> {
    let mut store = RelStore::default();
    let mut measured = vec![Measured::default(); graph.tasks.len()];
    let mut resilience = ResilienceLog::default();
    let mut integrity_log = IntegrityLog::default();
    // Relation profiles only matter when corruptions can be injected or
    // the guard checks are on; clean runs skip the catalog lookups.
    let profiling = opts.check_integrity()
        || opts
            .faults
            .as_ref()
            .is_some_and(|p| p.has_wrong_answer_faults());
    let ledger = crate::batch::ShipLedger::default();
    let mut effective: Vec<SourceId> = graph.tasks.iter().map(|t| t.source).collect();
    let mut active = match &opts.faults {
        Some(plan) => resolve_outages(catalog, graph, plan, &mut effective)?,
        None => None,
    };
    let base_catalog = catalog;
    let env = FaultEnv {
        plan: opts.faults.as_ref(),
        retry: opts.retry(),
        deadline: opts.deadline.as_ref(),
    };
    // Per-source completed-task counters, consulted only when the fault
    // plan schedules a mid-run outage ("source dies after k tasks").
    let mid_run = opts
        .faults
        .as_ref()
        .is_some_and(|p| p.has_mid_run_outages());
    let mut completed_at: HashMap<SourceId, usize> = HashMap::new();
    let epoch = Instant::now();
    for (pos, &id) in graph.topo.iter().enumerate() {
        if mid_run {
            let plan = opts.faults.as_ref().expect("mid_run implies a plan");
            let sid = effective[id];
            let dead = |s: SourceId| {
                plan.outage_after(s)
                    .is_some_and(|k| completed_at.get(&s).copied().unwrap_or(0) >= k)
            };
            if !sid.is_mediator() && dead(sid) {
                // The source completed its allotted tasks and died: fail
                // its remaining tasks over to a live declared replica, or
                // abort with the lost tasks if none exists.
                let cat = active.as_ref().unwrap_or(base_catalog);
                let replica = cat
                    .replica_of(sid)
                    .filter(|r| !plan.source_down(*r) && !dead(*r));
                match replica {
                    Some(replica) => {
                        active = Some(cat.failover(sid).expect("replica is declared"));
                        for &later in &graph.topo[pos..] {
                            if effective[later] == sid {
                                effective[later] = replica;
                            }
                        }
                        resilience.replans += 1;
                    }
                    None => {
                        let lost_tasks: Vec<String> = graph.topo[pos..]
                            .iter()
                            .filter(|&&t| effective[t] == sid)
                            .map(|&t| graph.tasks[t].label.clone())
                            .collect();
                        return Err(MediatorError::SourceUnavailable {
                            source: base_catalog.source(sid).name().to_string(),
                            lost_tasks,
                        });
                    }
                }
            }
        }
        let catalog = active.as_ref().unwrap_or(base_catalog);
        let task = &graph.tasks[id];
        let in_rows = input_rows(task, &store);
        let start = Instant::now();
        let start_secs = (start - epoch).as_secs_f64();
        let failed_over_from =
            (effective[id] != task.source).then(|| catalog.source(task.source).name());
        let profile = if profiling {
            integrity::profile_task(task, catalog)
        } else {
            None
        };
        let output = {
            let exec = Executor {
                aig,
                catalog,
                graph,
                store: &store,
                opts,
            };
            if let Some(secs) = opts.pace.as_ref().and_then(|p| p.get(id)) {
                crate::faults::sleep_secs(*secs);
            }
            let ctx = TaskFaultCtx {
                task_id: id,
                label: &task.label,
                source: effective[id],
                source_name: catalog.source(effective[id]).name(),
                table: integrity::task_table(task),
                failed_over_from,
                profile: profile.as_ref(),
                check_integrity: opts.check_integrity(),
            };
            env.run_task(
                &ctx,
                &mut resilience.events,
                &mut integrity_log.events,
                || {
                    // Same-source execution across concurrent requests is
                    // arbitrated EDF; acquired per attempt so the slot is
                    // never held across a backoff sleep.
                    let _slot = opts
                        .gate
                        .as_ref()
                        .filter(|_| !effective[id].is_mediator())
                        .map(|gate| gate.acquire(effective[id], opts.deadline.as_ref()));
                    exec.run_task(task, args)
                },
            )?
        };
        let secs = start.elapsed().as_secs_f64();
        let (rows, bytes, wire) = output
            .as_ref()
            .map(|r| (r.len() as f64, r.byte_size() as f64, r.wire_bytes() as f64))
            .unwrap_or((0.0, 0.0, 0.0));
        let shipped = output
            .as_ref()
            .map(|r| crate::batch::ship_output(opts, &ledger, id, r, |_, _| {}));
        let (ship_bytes, batches) = shipped
            .map(|s| (s.ship_bytes, s.batches))
            .unwrap_or((0.0, 0));
        if let (Some(key), Some(rel)) = (task.output.clone(), output) {
            store.insert(key, rel);
        }
        measured[id] = Measured {
            secs,
            out_rows: rows,
            out_bytes: bytes,
            wire_bytes: wire,
            ship_bytes,
            batches,
            in_rows,
            wait_secs: 0.0,
            start_secs,
        };
        if mid_run && !effective[id].is_mediator() {
            *completed_at.entry(effective[id]).or_insert(0) += 1;
        }
    }
    Ok(ExecResult {
        store,
        measured,
        resilience,
        integrity: integrity_log,
        sched: SchedLog::default(),
        batch: crate::batch::BatchLog::from_ledger(opts, &ledger),
    })
}

/// The ship-image size of a task's output under the active ship-cut
/// profiles; the dictionary-encoded wire size of the full relation when
/// ship-cut is off (both arms report wire bytes, so on/off comparisons
/// measure pruning, not encoding).
pub(crate) fn ship_image_bytes(opts: &ExecOptions, task_id: usize, rel: &Relation) -> f64 {
    match &opts.shipcut {
        Some(cut) => cut.ship_bytes(task_id, rel) as f64,
        None => rel.wire_bytes() as f64,
    }
}

/// Total rows across the task's distinct input relations (observability
/// accounting; reads that fail — e.g. a producer with no output — count 0).
pub(crate) fn input_rows<S: RelSource>(task: &Task, store: &S) -> f64 {
    let mut seen = HashSet::new();
    let mut rows = 0.0;
    for (_, key) in &task.deps {
        if seen.insert(key) {
            if let Ok(rel) = store.rel(key) {
                rows += rel.len() as f64;
            }
        }
    }
    rows
}

pub(crate) struct Executor<'a, S: RelSource> {
    pub(crate) aig: &'a Aig,
    pub(crate) catalog: &'a Catalog,
    pub(crate) graph: &'a TaskGraph,
    pub(crate) store: &'a S,
    pub(crate) opts: &'a ExecOptions,
}

impl<S: RelSource> Executor<'_, S> {
    /// Runs one task against the relations visible through `store`,
    /// returning the relation it produces (None for guards).
    pub(crate) fn run_task(
        &self,
        task: &Task,
        args: &[(&str, Value)],
    ) -> Result<Option<Relation>, MediatorError> {
        match &task.kind {
            TaskKind::Root => {
                let root_info = self.aig.elem_info(self.aig.root);
                let columns = instance_columns(&root_info.inh);
                let mut row = vec![
                    Value::int(0),
                    Value::int(-1),
                    Value::int(0),
                    Value::str(Occ::mat(self.aig.root).key(self.aig)),
                ];
                for decl in root_info.inh.iter().filter(|d| d.ty.is_scalar()) {
                    let v = args
                        .iter()
                        .find(|(n, _)| *n == decl.name)
                        .map(|(_, v)| v.clone())
                        .ok_or_else(|| {
                            MediatorError::Aig(AigError::Spec(format!(
                                "missing value for AIG parameter `{}`",
                                decl.name
                            )))
                        })?;
                    row.push(v);
                }
                let mut rel = Relation::empty(columns);
                rel.push(row);
                Ok(Some(rel))
            }
            TaskKind::Gen {
                parent,
                item,
                query,
                set_input,
                broadcast,
                generated_fields,
            } => {
                let child_elem = self.child_of(parent, *item)?;
                let child_info = self.aig.elem_info(child_elem);
                let raw: Relation = if let Some(vq) = query {
                    self.run_vector_query(vq)?
                } else {
                    // Mediator iteration over a set: (__owner, comps…).
                    let key = set_input.as_ref().ok_or_else(|| {
                        MediatorError::Internal("set generator without input".to_string())
                    })?;
                    let rel = self.store.rel(key)?.clone();
                    // Align with query output shape: __parent + comps.
                    let mut columns = vec!["__parent".to_string()];
                    columns.extend(rel.columns().iter().skip(1).cloned());
                    rel.with_columns(columns)
                };
                // Build child rows: parent, ord, scalar fields in decl order.
                let base = self.store.rel(&RelKey::Instances(parent.base))?;
                let base_rows = index_by_rowid(base)?;
                let mut out_columns = vec!["__parent".to_string(), "__ord".to_string()];
                let scalar_fields: Vec<&str> = child_info
                    .inh
                    .iter()
                    .filter(|f| f.ty.is_scalar())
                    .map(|f| f.name.as_str())
                    .collect();
                out_columns.extend(scalar_fields.iter().map(|s| s.to_string()));
                // Column positions in the raw output.
                let parent_col = raw.col("__parent")?;
                let mut rows: Vec<Vec<Value>> = Vec::with_capacity(raw.len());
                for r in 0..raw.len() {
                    let parent_id = raw.cell(r, parent_col).clone();
                    let parent_idx = base_rows.get(&parent_id).copied().ok_or_else(|| {
                        MediatorError::Internal("generator row with unknown parent".into())
                    })?;
                    let mut row = vec![parent_id, Value::int(0)];
                    for field in &scalar_fields {
                        if generated_fields.iter().any(|g| g == field) {
                            let c = raw.col(field)?;
                            row.push(raw.cell(r, c).clone());
                        } else if let Some((_, bind)) = broadcast.iter().find(|(n, _)| n == field) {
                            row.push(match bind {
                                ScalarBind::Const(v) => v.clone(),
                                ScalarBind::Col(c) => base.cell(parent_idx, base.col(c)?).clone(),
                            });
                        } else {
                            return Err(MediatorError::Internal(format!(
                                "field `{field}` neither generated nor broadcast"
                            )));
                        }
                    }
                    rows.push(row);
                }
                // Canonical per-parent order: (parent, fields), then ordinal.
                // Compared by reference — no per-comparison clones — and
                // partitioned over the configured threads for large outputs.
                stable_sort_rows_with(
                    &mut rows,
                    self.opts.threads(),
                    self.opts.par_threshold(),
                    |a, b| a[0].cmp(&b[0]).then_with(|| a[2..].cmp(&b[2..])),
                );
                let mut last_parent: Option<Value> = None;
                let mut ord = 0i64;
                let mut finished: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
                for mut row in rows {
                    if last_parent.as_ref() != Some(&row[0]) {
                        ord = 0;
                        last_parent = Some(row[0].clone());
                    }
                    row[1] = Value::int(ord);
                    ord += 1;
                    finished.push(row);
                }
                let rel = Relation::new(out_columns, finished).map_err(MediatorError::Store)?;
                Ok(Some(rel))
            }
            TaskKind::InhSetQuery {
                target,
                field,
                query,
            } => {
                let raw = self.run_vector_query(query)?;
                let mut columns = vec!["__owner".to_string()];
                columns.extend(raw.columns().iter().skip(1).cloned());
                let mut rel = raw.with_columns(columns);
                // Coerce: dedup for set-typed targets, keep bags.
                let binding = self.binding(target)?;
                let info = self.aig.elem_info(binding.elem);
                if let Some(decl) = info.inh.iter().find(|f| &f.name == field) {
                    if matches!(decl.ty, FieldType::Set(_)) {
                        self.dedup_output(&mut rel);
                    }
                }
                Ok(Some(rel))
            }
            TaskKind::Assemble { elem, inputs } => {
                let info = self.aig.elem_info(*elem);
                let columns = instance_columns(&info.inh);
                let mut rel = Relation::empty(columns);
                let mut rowid = 0i64;
                for input in inputs {
                    let occ_value = match input {
                        RelKey::GenOut(occ, item) => occ_tag(self.aig, occ, *item),
                        RelKey::BranchOut(occ, b) => branch_tag(self.aig, occ, *b),
                        other => {
                            return Err(MediatorError::Internal(format!(
                                "unexpected assemble input {other:?}"
                            )))
                        }
                    };
                    let part = self.store.rel(input)?;
                    for r in 0..part.len() {
                        // part: __parent, __ord, fields…
                        let mut out = Vec::with_capacity(part.arity() + 2);
                        out.push(Value::int(rowid));
                        rowid += 1;
                        out.push(part.cell(r, 0).clone());
                        out.push(part.cell(r, 1).clone());
                        out.push(Value::str(occ_value.clone()));
                        out.extend((2..part.arity()).map(|c| part.cell(r, c).clone()));
                        rel.push(out);
                    }
                }
                Ok(Some(rel))
            }
            TaskKind::Cond { occ, query } => {
                let elem_name = self.aig.elem_name(self.binding(occ)?.elem).to_string();
                let raw = self.run_vector_query(query)?;
                let base = self.store.rel(&RelKey::Instances(occ.base))?;
                // Exactly one row per owner; the pick is an integer.
                let mut picks: HashMap<Value, i64> = HashMap::new();
                let parent_col = raw.col("__parent")?;
                if raw.arity() != 2 {
                    return Err(MediatorError::Aig(AigError::BadConditionResult {
                        elem: elem_name,
                        detail: format!("condition query returns {} columns", raw.arity() - 1),
                    }));
                }
                for r in 0..raw.len() {
                    // `__parent` is always prepended first; the pick value
                    // is the remaining column.
                    let pick = match raw.cell(r, 1) {
                        Value::Int(i) => *i,
                        Value::Str(s) => s.parse::<i64>().map_err(|_| {
                            MediatorError::Aig(AigError::BadConditionResult {
                                elem: elem_name.clone(),
                                detail: format!("value {s:?} is not an integer"),
                            })
                        })?,
                        Value::Null => {
                            return Err(MediatorError::Aig(AigError::BadConditionResult {
                                elem: elem_name,
                                detail: "condition query returned NULL".to_string(),
                            }))
                        }
                    };
                    if picks
                        .insert(raw.cell(r, parent_col).clone(), pick)
                        .is_some()
                    {
                        return Err(MediatorError::Aig(AigError::BadConditionResult {
                            elem: elem_name,
                            detail: "more than one row for an instance".to_string(),
                        }));
                    }
                }
                if picks.len() != base.len() {
                    return Err(MediatorError::Aig(AigError::BadConditionResult {
                        elem: elem_name,
                        detail: format!(
                            "condition produced {} picks for {} instances",
                            picks.len(),
                            base.len()
                        ),
                    }));
                }
                let mut rel = Relation::empty(vec!["__owner".into(), "__pick".into()]);
                let rowid_col = base.col("__rowid")?;
                for r in 0..base.len() {
                    let owner = base.cell(r, rowid_col).clone();
                    let pick = picks[&owner];
                    rel.push(vec![owner, Value::int(pick)]);
                }
                Ok(Some(rel))
            }
            TaskKind::BranchMat { occ, branch } => {
                let binding = self.binding(occ)?.clone();
                let info = self.aig.elem_info(binding.elem);
                let Prod::Choice { branches, .. } = &info.prod else {
                    return Err(MediatorError::Internal("branch of non-choice".into()));
                };
                let spec = &branches[*branch];
                let child_info = self.aig.elem_info(spec.elem);
                let picks = self.store.rel(&RelKey::Pick(occ.clone()))?.clone();
                let base = self.store.rel(&RelKey::Instances(occ.base))?.clone();
                let base_rows = index_by_rowid(&base)?;
                let mut columns = vec!["__parent".to_string(), "__ord".to_string()];
                let scalar_fields: Vec<&str> = child_info
                    .inh
                    .iter()
                    .filter(|f| f.ty.is_scalar())
                    .map(|f| f.name.as_str())
                    .collect();
                columns.extend(scalar_fields.iter().map(|s| s.to_string()));
                let mut rel = Relation::empty(columns);
                for r in 0..picks.len() {
                    if picks.cell(r, 1) != &Value::int(*branch as i64 + 1) {
                        continue;
                    }
                    let owner = picks.cell(r, 0).clone();
                    let base_idx = base_rows[&owner];
                    let mut out = vec![owner, Value::int(0)];
                    for field in &scalar_fields {
                        let rule = spec
                            .assigns
                            .iter()
                            .find(|(f, _)| f == field)
                            .map(|(_, r)| r);
                        let value = match rule {
                            Some(FieldRule::Scalar(expr)) => {
                                self.scalar_at(&binding, expr, &base, base_idx)?
                            }
                            _ => Value::Null,
                        };
                        out.push(value);
                    }
                    rel.push(out);
                }
                Ok(Some(rel))
            }
            TaskKind::SynAgg { occ, field } => Ok(Some(self.compute_syn(occ, field)?)),
            TaskKind::Guard { occ, guard } => {
                if self.opts.check_guards() {
                    self.check_guard(occ, *guard)?;
                }
                Ok(None)
            }
        }
    }

    fn binding(&self, occ: &Occ) -> Result<&Binding, MediatorError> {
        self.graph.bindings.get(occ).ok_or_else(|| {
            MediatorError::Internal(format!("unknown occurrence {}", occ.key(self.aig)))
        })
    }

    fn child_of(&self, occ: &Occ, item: usize) -> Result<ElemIdx, MediatorError> {
        let binding = self.binding(occ)?;
        match &self.aig.elem_info(binding.elem).prod {
            Prod::Items(items) => Ok(items[item].elem),
            _ => Err(MediatorError::Internal("child of leaf production".into())),
        }
    }

    /// Executes a vectorized query against the catalog, binding relation
    /// parameters from the store.
    fn run_vector_query(&self, vq: &VectorQuery) -> Result<Relation, MediatorError> {
        let mut params = Params::new();
        for (name, input) in &vq.inputs {
            let rel = match input {
                ParamInput::Base(e) => self.store.rel(&RelKey::Instances(*e))?.clone(),
                ParamInput::Rel(key) => self.store.rel(key)?.clone(),
                ParamInput::RelFirstDistinct(key) => {
                    let rel = self.store.rel(key)?;
                    let first = rel.columns()[1].clone();
                    rel.project(&["__owner", first.as_str()])
                        .map_err(MediatorError::Store)?
                        .with_columns(vec!["__owner".into(), "__member".into()])
                        .distinct()
                }
            };
            params.insert(name.clone(), ParamValue::Rel(rel));
        }
        if self.opts.batching() {
            // Streaming mode: hash-join builds and DISTINCT inside the
            // query consume their inputs in `batch_rows` chunks
            // (byte-identical results; see `aig_sql::execute_streamed`).
            return Ok(sql_execute_streamed(
                &vq.query,
                self.catalog,
                &params,
                self.opts.threads(),
                self.opts.par_threshold(),
                self.opts.batch_rows(),
            )?);
        }
        Ok(sql_execute_tuned(
            &vq.query,
            self.catalog,
            &params,
            self.opts.threads(),
            self.opts.par_threshold(),
        )?)
    }

    /// Set-semantics coercion of a task output. Materializing mode uses
    /// the (possibly partitioned) one-shot dedup kernel; under chunked
    /// execution, inputs below the partitioning crossover feed an
    /// incremental distinct in `batch_rows` chunks instead — same
    /// first-occurrence order, byte-identical output.
    fn dedup_output(&self, rel: &mut Relation) {
        let threads = self.opts.threads();
        let threshold = self.opts.par_threshold();
        if self.opts.batching() && !(threads > 1 && rel.len() >= threshold) {
            let mut distinct = IncrementalDistinct::new(rel.columns().to_vec());
            for batch in rel.batches(self.opts.batch_rows()) {
                distinct.feed(&batch);
            }
            *rel = distinct.finish();
        } else {
            rel.dedup_parallel_with(threads, threshold);
        }
    }

    /// Resolves a scalar rule expression for a specific base row.
    fn scalar_at(
        &self,
        binding: &Binding,
        expr: &ValueExpr,
        base: &Relation,
        base_idx: usize,
    ) -> Result<Value, MediatorError> {
        match resolve_scalar(self.aig, binding.elem, expr) {
            Some(ResolvedScalar::Const(v)) => Ok(v),
            Some(ResolvedScalar::InhField(f)) => match binding.scalars.get(&f) {
                Some(ScalarBind::Const(v)) => Ok(v.clone()),
                Some(ScalarBind::Col(c)) => Ok(base.cell(base_idx, base.col(c)?).clone()),
                None => Err(MediatorError::Internal(format!(
                    "missing scalar binding `{f}`"
                ))),
            },
            None => Err(MediatorError::Unsupported(format!(
                "scalar expression at `{}` does not resolve through copy chains",
                self.aig.elem_name(binding.elem)
            ))),
        }
    }

    /// Computes a synthesized set/bag table `(__owner, comps…)`.
    fn compute_syn(&self, occ: &Occ, field: &str) -> Result<Relation, MediatorError> {
        let binding = self.binding(occ)?.clone();
        let info = self.aig.elem_info(binding.elem);
        let decl = info
            .syn
            .iter()
            .find(|f| f.name == field)
            .ok_or_else(|| MediatorError::Internal(format!("no syn decl `{field}`")))?;
        let comps: Vec<String> = decl
            .ty
            .components()
            .map(|c| c.to_vec())
            .ok_or_else(|| MediatorError::Internal("scalar SynAgg".into()))?;
        let is_set = matches!(decl.ty, FieldType::Set(_));
        let mut columns = vec!["__owner".to_string()];
        columns.extend(comps.iter().cloned());

        let mut out = Relation::empty(columns.clone());
        match &info.prod {
            Prod::Choice { branches, .. } => {
                for (bno, branch) in branches.iter().enumerate() {
                    let rule = branch.syn.iter().find(|r| r.field == field);
                    match rule.map(|r| &r.rule) {
                        None | Some(FieldRule::Set(SetExpr::Empty)) => {}
                        Some(FieldRule::Set(SetExpr::ChildSyn { item: 0, field: f })) => {
                            // Child syn keyed by the branch child's rowids →
                            // re-key to the owner through the branch table.
                            let child_occ = Occ::mat(branch.elem);
                            let key = resolve_syn_key(
                                self.aig,
                                &self.graph.bindings,
                                &child_occ,
                                branch.elem,
                                f,
                            )?;
                            let child_syn = self.store.rel(&key)?;
                            let t_child = self.store.rel(&RelKey::Instances(branch.elem))?;
                            let tag = branch_tag(self.aig, occ, bno);
                            let (rc, pc, oc) = (
                                t_child.col("__rowid")?,
                                t_child.col("__parent")?,
                                t_child.col("__occ")?,
                            );
                            let parent_of = parents_by_tag(t_child, &tag, rc, pc, oc);
                            rekey_to_owners(child_syn, &parent_of, &mut out);
                        }
                        _ => {
                            return Err(MediatorError::Unsupported(
                                "choice branch synthesized rule is not a direct child copy"
                                    .to_string(),
                            ))
                        }
                    }
                }
            }
            _ => {
                let rule = info
                    .syn_rules
                    .iter()
                    .find(|r| r.field == field)
                    .ok_or_else(|| MediatorError::Internal(format!("no syn rule `{field}`")))?;
                let FieldRule::Set(expr) = &rule.rule else {
                    return Err(MediatorError::Internal("non-set SynAgg rule".into()));
                };
                let rel = self.eval_set_table(&binding, expr, &comps)?;
                out.extend(&rel.with_columns(columns.clone()))
                    .map_err(MediatorError::Store)?;
            }
        }
        if is_set {
            self.dedup_output(&mut out);
        }
        Ok(out)
    }

    /// Evaluates a set expression into an `(__owner, comps…)` table.
    fn eval_set_table(
        &self,
        binding: &Binding,
        expr: &SetExpr,
        comps: &[String],
    ) -> Result<Relation, MediatorError> {
        let mut columns = vec!["__owner".to_string()];
        columns.extend(comps.iter().cloned());
        match expr {
            SetExpr::Empty => Ok(Relation::empty(columns)),
            SetExpr::InhField(f) => {
                let key = binding
                    .sets
                    .get(f)
                    .ok_or_else(|| MediatorError::Internal(format!("no set binding `{f}`")))?;
                Ok(self.store.rel(key)?.clone().with_columns(columns))
            }
            SetExpr::ChildSyn { item, field } => {
                let child_occ = binding.occ.child(*item);
                let child_elem = self.child_of(&binding.occ, *item)?;
                let key = resolve_syn_key(
                    self.aig,
                    &self.graph.bindings,
                    &child_occ,
                    child_elem,
                    field,
                )?;
                Ok(self.store.rel(&key)?.clone().with_columns(columns))
            }
            SetExpr::Collect { item, field } => {
                let child_elem = self.child_of(&binding.occ, *item)?;
                let child_info = self.aig.elem_info(child_elem);
                let t_child = self.store.rel(&RelKey::Instances(child_elem))?;
                let tag = occ_tag(self.aig, &binding.occ, *item);
                let (rc, pc, oc) = (
                    t_child.col("__rowid")?,
                    t_child.col("__parent")?,
                    t_child.col("__occ")?,
                );
                let field_decl = child_info
                    .syn
                    .iter()
                    .find(|f| f.name == *field)
                    .ok_or_else(|| MediatorError::Internal(format!("no child syn `{field}`")))?;
                let mut out = Relation::empty(columns);
                if field_decl.ty.is_scalar() {
                    // The collected scalar resolves through copy chains to a
                    // column of the child's instance table.
                    let rule = child_info
                        .syn_rules
                        .iter()
                        .find(|r| r.field == *field)
                        .ok_or_else(|| {
                            MediatorError::Internal(format!("no child syn rule `{field}`"))
                        })?;
                    let FieldRule::Scalar(child_expr) = &rule.rule else {
                        return Err(MediatorError::Internal("scalar decl, set rule".into()));
                    };
                    let tag_sym = intern::lookup(&Value::str(tag.as_str()));
                    match resolve_scalar(self.aig, child_elem, child_expr) {
                        Some(ResolvedScalar::Const(v)) => {
                            for r in 0..t_child.len() {
                                if Some(t_child.sym(r, oc)) == tag_sym {
                                    out.push(vec![t_child.cell(r, pc).clone(), v.clone()]);
                                }
                            }
                        }
                        Some(ResolvedScalar::InhField(f)) => {
                            let c = t_child.col(&f)?;
                            for r in 0..t_child.len() {
                                if Some(t_child.sym(r, oc)) == tag_sym {
                                    out.push(vec![
                                        t_child.cell(r, pc).clone(),
                                        t_child.cell(r, c).clone(),
                                    ]);
                                }
                            }
                        }
                        None => {
                            return Err(MediatorError::Unsupported(format!(
                                "collected scalar `{field}` of `{}` does not resolve \
                                 through copy chains",
                                child_info.name
                            )))
                        }
                    }
                } else {
                    let child_occ = Occ::mat(child_elem);
                    let key = resolve_syn_key(
                        self.aig,
                        &self.graph.bindings,
                        &child_occ,
                        child_elem,
                        field,
                    )?;
                    let child_syn = self.store.rel(&key)?;
                    let parent_of = parents_by_tag(t_child, &tag, rc, pc, oc);
                    rekey_to_owners(child_syn, &parent_of, &mut out);
                }
                Ok(out)
            }
            SetExpr::Union(terms) => {
                let mut out = Relation::empty(columns.clone());
                for term in terms {
                    let rel = self.eval_set_table(binding, term, comps)?;
                    out.extend(&rel.with_columns(columns.clone()))
                        .map_err(MediatorError::Store)?;
                }
                Ok(out)
            }
            SetExpr::Singleton(exprs) => {
                let base = self.store.rel(&RelKey::Instances(binding.occ.base))?;
                let rowid_col = base.col("__rowid")?;
                let mut out = Relation::empty(columns);
                for idx in 0..base.len() {
                    let mut r = vec![base.cell(idx, rowid_col).clone()];
                    for e in exprs {
                        r.push(self.scalar_at(binding, e, base, idx)?);
                    }
                    out.push(r);
                }
                Ok(out)
            }
        }
    }

    fn check_guard(&self, occ: &Occ, guard: usize) -> Result<(), MediatorError> {
        let binding = self.binding(occ)?;
        let info = self.aig.elem_info(binding.elem);
        let g = &info.guards[guard];
        match &g.kind {
            GuardKind::Unique { field } => {
                let key =
                    resolve_syn_key(self.aig, &self.graph.bindings, occ, binding.elem, field)?;
                let rel = self.store.rel(&key)?;
                let mut seen: HashSet<Vec<aig_relstore::Sym>> = HashSet::with_capacity(rel.len());
                for r in 0..rel.len() {
                    let key: Vec<aig_relstore::Sym> =
                        (0..rel.arity()).map(|c| rel.sym(r, c)).collect();
                    if !seen.insert(key) {
                        return Err(MediatorError::Aig(AigError::ConstraintViolation {
                            constraint: g.label.clone(),
                            context: format!(
                                "{} instance {}",
                                info.tag(),
                                rel.cell(r, 0).to_text()
                            ),
                            value: format!("{:?}", &rel.row(r)[1..]),
                        }));
                    }
                }
                Ok(())
            }
            GuardKind::Subset { sub, sup } => {
                let sub_key =
                    resolve_syn_key(self.aig, &self.graph.bindings, occ, binding.elem, sub)?;
                let sup_key =
                    resolve_syn_key(self.aig, &self.graph.bindings, occ, binding.elem, sup)?;
                let sub_rel = self.store.rel(&sub_key)?;
                let sup_rel = self.store.rel(&sup_key)?;
                let sup_set: HashSet<Vec<aig_relstore::Sym>> = (0..sup_rel.len())
                    .map(|r| (0..sup_rel.arity()).map(|c| sup_rel.sym(r, c)).collect())
                    .collect();
                for r in 0..sub_rel.len() {
                    let key: Vec<aig_relstore::Sym> =
                        (0..sub_rel.arity()).map(|c| sub_rel.sym(r, c)).collect();
                    if !sup_set.contains(&key) {
                        return Err(MediatorError::Aig(AigError::ConstraintViolation {
                            constraint: g.label.clone(),
                            context: format!(
                                "{} instance {}",
                                info.tag(),
                                sub_rel.cell(r, 0).to_text()
                            ),
                            value: format!("{:?}", &sub_rel.row(r)[1..]),
                        }));
                    }
                }
                Ok(())
            }
        }
    }
}

/// Instance-table column layout for an element with the given inherited
/// declarations.
pub fn instance_columns(inh: &[aig_core::FieldDecl]) -> Vec<String> {
    let mut columns = vec![
        "__rowid".to_string(),
        "__parent".to_string(),
        "__ord".to_string(),
        "__occ".to_string(),
    ];
    columns.extend(
        inh.iter()
            .filter(|f| f.ty.is_scalar())
            .map(|f| f.name.clone()),
    );
    columns
}

/// Maps `__rowid` values to row positions.
pub fn index_by_rowid(rel: &Relation) -> Result<HashMap<Value, usize>, MediatorError> {
    let c = rel.col("__rowid").map_err(MediatorError::Store)?;
    Ok((0..rel.len())
        .map(|i| (rel.cell(i, c).clone(), i))
        .collect())
}

/// Maps child `__rowid` symbols to parent symbols for rows carrying the
/// given `__occ` tag. Tag matching is one interner lookup plus per-row
/// symbol compares; a never-interned tag matches no rows.
fn parents_by_tag(
    t_child: &Relation,
    tag: &str,
    rc: usize,
    pc: usize,
    oc: usize,
) -> HashMap<aig_relstore::Sym, aig_relstore::Sym> {
    let tag_sym = intern::lookup(&Value::str(tag));
    let mut parent_of = HashMap::new();
    if let Some(tag_sym) = tag_sym {
        for r in 0..t_child.len() {
            if t_child.sym(r, oc) == tag_sym {
                parent_of.insert(t_child.sym(r, rc), t_child.sym(r, pc));
            }
        }
    }
    parent_of
}

/// Appends `child_syn` rows re-keyed from child rowid to owner, dropping
/// rows whose child is not in `parent_of`.
fn rekey_to_owners(
    child_syn: &Relation,
    parent_of: &HashMap<aig_relstore::Sym, aig_relstore::Sym>,
    out: &mut Relation,
) {
    for r in 0..child_syn.len() {
        if let Some(&owner) = parent_of.get(&child_syn.sym(r, 0)) {
            let mut row = vec![intern::resolve(owner).clone()];
            row.extend((1..child_syn.arity()).map(|c| child_syn.cell(r, c).clone()));
            out.push(row);
        }
    }
}
