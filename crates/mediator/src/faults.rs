//! Deterministic fault injection and recovery for source execution.
//!
//! The mediator of §5 ships parameterized queries to autonomous relational
//! sources; in a real deployment those sources stall, drop connections, or
//! go down entirely. This module supplies a *seeded* fault model so that
//! every failure scenario is reproducible: a [`FaultPlan`] decides, as a
//! pure function of `(seed, source, task, attempt)`, whether an attempt
//! suffers a transient error, a latency spike, or hits a hard source
//! outage. Both executors drive recovery through the same
//! [`FaultEnv::run_task`] loop — retry with exponential backoff and jitter,
//! a per-attempt timeout bounding injected stalls, and (for outages)
//! failover to a replica declared in the catalog.
//!
//! Because the decision function is pure, the injected fault stream does
//! not depend on thread interleaving: with the same seed, a faulted run
//! that recovers produces byte-identical relations and tagged documents to
//! a fault-free run (see the chaos-matrix tests).

use crate::error::MediatorError;
use aig_prng::{Rng, SeedableRng, StdRng};
use aig_relstore::{Catalog, SourceId};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Configuration of the deterministic fault model. All rates are per
/// *attempt* probabilities in `[0, 1]`; the mediator pseudo-source is never
/// faulted (the model covers the autonomous sources, not the mediator
/// itself).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault stream; the same seed replays the same faults.
    pub seed: u64,
    /// Probability that an attempt fails with a transient source error.
    pub transient_rate: f64,
    /// Probability that an attempt is delayed by a latency spike.
    pub latency_rate: f64,
    /// Nominal spike duration in seconds (the drawn spike is uniform in
    /// `[0.5, 1.5] × latency_secs`). Spikes at or above the retry policy's
    /// timeout fail the attempt as a timeout.
    pub latency_secs: f64,
    /// Sources (by catalog name) hard-down for the entire run.
    pub outages: Vec<String>,
    /// Probability that any given source is additionally drawn hard-down
    /// from the seed.
    pub outage_rate: f64,
    /// Mid-run outages: `(source name, k)` — the source completes `k` tasks
    /// and then goes hard-down for the rest of the run. `k = 0` is a
    /// whole-run outage, equivalent to listing the source in `outages`.
    pub dies_after: Vec<(String, usize)>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            transient_rate: 0.0,
            latency_rate: 0.0,
            latency_secs: 0.001,
            outages: Vec::new(),
            outage_rate: 0.0,
            dies_after: Vec::new(),
        }
    }
}

/// Retry/backoff/timeout policy for source-task execution. The backoff is
/// exponential with deterministic jitter (seeded per task and attempt, so
/// reruns sleep the same schedule).
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per task including the first (1 = no retries).
    pub max_attempts: usize,
    /// First backoff sleep in seconds; doubles every retry.
    pub backoff_base_secs: f64,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap_secs: f64,
    /// Jitter fraction in `[0, 1]`: each sleep is scaled by a deterministic
    /// factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Per-attempt timeout bounding injected stalls: a latency spike at or
    /// above this fails the attempt (counted as a timeout) after sleeping
    /// only the timeout, never the full spike.
    pub timeout_secs: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_secs: 0.0005,
            backoff_cap_secs: 0.01,
            jitter: 0.5,
            timeout_secs: f64::INFINITY,
        }
    }
}

impl RetryPolicy {
    /// A policy that surfaces the first fault (no retries, no timeout).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The deterministic backoff sleep before retry number `attempt + 1`.
    pub fn backoff_secs(&self, seed: u64, task: usize, attempt: usize) -> f64 {
        let raw = self.backoff_base_secs * (1u64 << attempt.min(32)) as f64;
        let capped = raw.min(self.backoff_cap_secs);
        if self.jitter <= 0.0 || capped <= 0.0 {
            return capped;
        }
        let mut rng = StdRng::seed_from_u64(mix(&[seed, 0xBACC_0FF5, task as u64, attempt as u64]));
        let factor = rng.gen_range(1.0 - self.jitter..1.0 + self.jitter);
        capped * factor
    }
}

/// What the fault plan injects into one attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectedFault {
    /// The attempt fails immediately with a transient source error.
    Transient,
    /// The attempt is stalled for the given duration before the query runs;
    /// stalls reaching the policy timeout fail the attempt instead.
    Latency(Duration),
}

/// Kind tag of a recorded fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    Transient,
    Latency,
    Outage,
}

impl FaultKind {
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Latency => "latency",
            FaultKind::Outage => "outage",
        }
    }
}

/// How one injected fault was resolved. Every fault gets exactly one
/// outcome, which is what makes the accounting identity hold:
/// `injected = retried + timed_out + failed_over + surfaced` (absorbed
/// latency spikes never failed an attempt and are counted separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultOutcome {
    /// A transient error was retried after backoff.
    Retried,
    /// A latency spike hit the per-attempt timeout and was retried.
    TimedOut,
    /// A hard outage was routed to a replica source.
    FailedOver,
    /// The fault exhausted the retry budget and surfaced as the run error.
    Surfaced,
    /// A sub-timeout latency spike delayed the attempt without failing it.
    Absorbed,
}

impl FaultOutcome {
    pub fn name(self) -> &'static str {
        match self {
            FaultOutcome::Retried => "retried",
            FaultOutcome::TimedOut => "timed_out",
            FaultOutcome::FailedOver => "failed_over",
            FaultOutcome::Surfaced => "surfaced",
            FaultOutcome::Absorbed => "absorbed",
        }
    }
}

/// One recorded injection: which task/attempt it hit, what was injected,
/// how it resolved, and the real seconds slept for backoff and stall.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    pub task: usize,
    pub label: String,
    pub source: String,
    pub attempt: usize,
    pub kind: FaultKind,
    pub outcome: FaultOutcome,
    pub backoff_secs: f64,
    pub stall_secs: f64,
}

/// Everything the fault layer did during one execution: the event log plus
/// how often the scheduler re-planned the surviving subgraph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceLog {
    pub events: Vec<FaultEvent>,
    /// `Schedule` re-runs on the surviving subgraph after an outage.
    pub replans: usize,
}

impl ResilienceLog {
    /// Events in the canonical `(task, attempt, kind)` order — the parallel
    /// executor appends in completion order, which varies with thread
    /// interleaving.
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut events = self.events.clone();
        events.sort_by(|a, b| {
            (a.task, a.attempt, a.kind, a.outcome).cmp(&(b.task, b.attempt, b.kind, b.outcome))
        });
        events
    }

    pub fn count(&self, outcome: FaultOutcome) -> usize {
        self.events.iter().filter(|e| e.outcome == outcome).count()
    }

    /// Injected faults excluding absorbed spikes (the identity's left side).
    pub fn injected(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.outcome != FaultOutcome::Absorbed)
            .count()
    }
}

/// The bound fault model: configuration plus the resolved set of hard-down
/// sources. Decisions are pure functions of the seed, so the plan can be
/// shared (or cloned) freely across worker threads.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    cfg: FaultConfig,
    down: BTreeSet<SourceId>,
    /// Mid-run outage thresholds: the source dies after completing this
    /// many tasks (always >= 1; zero thresholds fold into `down`).
    down_after: BTreeMap<SourceId, usize>,
}

impl FaultPlan {
    /// Binds `cfg` to a catalog: named outages are resolved (unknown names
    /// are an error) and seeded per-source outages drawn. The mediator
    /// pseudo-source is never taken down.
    pub fn new(cfg: &FaultConfig, catalog: &Catalog) -> Result<FaultPlan, MediatorError> {
        let mut down = BTreeSet::new();
        for name in &cfg.outages {
            let sid = catalog.source_id(name).map_err(MediatorError::Store)?;
            if sid.is_mediator() {
                return Err(MediatorError::Internal(
                    "cannot declare an outage of the mediator pseudo-source".to_string(),
                ));
            }
            down.insert(sid);
        }
        if cfg.outage_rate > 0.0 {
            for sid in catalog.source_ids() {
                if sid.is_mediator() {
                    continue;
                }
                let mut rng = StdRng::seed_from_u64(mix(&[cfg.seed, 0x0007_A6E5, sid.0 as u64]));
                if rng.gen_bool(cfg.outage_rate) {
                    down.insert(sid);
                }
            }
        }
        let mut down_after = BTreeMap::new();
        for (name, k) in &cfg.dies_after {
            let sid = catalog.source_id(name).map_err(MediatorError::Store)?;
            if sid.is_mediator() {
                return Err(MediatorError::Internal(
                    "cannot declare an outage of the mediator pseudo-source".to_string(),
                ));
            }
            if *k == 0 {
                down.insert(sid);
            } else {
                down_after.insert(sid, *k);
            }
        }
        Ok(FaultPlan {
            cfg: cfg.clone(),
            down,
            down_after,
        })
    }

    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether `source` is hard-down for the entire run.
    pub fn source_down(&self, source: SourceId) -> bool {
        self.down.contains(&source)
    }

    /// The mid-run outage threshold of `source`: it dies after completing
    /// this many tasks (None = no mid-run outage declared). Executors track
    /// per-source completion counts and treat the source as hard-down once
    /// the threshold is reached.
    pub fn outage_after(&self, source: SourceId) -> Option<usize> {
        self.down_after.get(&source).copied()
    }

    /// Whether any mid-run outage is declared (lets executors skip the
    /// completion-count bookkeeping entirely when not).
    pub fn has_mid_run_outages(&self) -> bool {
        !self.down_after.is_empty()
    }

    /// The fault injected into attempt `attempt` of `task` at `source`
    /// (None = the attempt runs cleanly). Pure in its arguments: the same
    /// plan returns the same answer regardless of execution order.
    pub fn decide(&self, source: SourceId, task: usize, attempt: usize) -> Option<InjectedFault> {
        if source.is_mediator() {
            return None;
        }
        if self.cfg.transient_rate <= 0.0 && self.cfg.latency_rate <= 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(mix(&[
            self.cfg.seed,
            0xFA17_57A6,
            source.0 as u64,
            task as u64,
            attempt as u64,
        ]));
        let draw = rng.gen_range(0.0f64..1.0);
        if draw < self.cfg.transient_rate {
            Some(InjectedFault::Transient)
        } else if draw < self.cfg.transient_rate + self.cfg.latency_rate {
            let spike = self.cfg.latency_secs * rng.gen_range(0.5f64..1.5);
            Some(InjectedFault::Latency(Duration::from_secs_f64(
                spike.max(0.0),
            )))
        } else {
            None
        }
    }
}

/// The per-execution fault environment both executors run tasks through.
#[derive(Clone, Copy)]
pub(crate) struct FaultEnv<'a> {
    pub plan: Option<&'a FaultPlan>,
    pub retry: &'a RetryPolicy,
}

impl FaultEnv<'_> {
    /// Runs one task under the fault model: injected latency spikes are
    /// slept (capped at the timeout), transient errors and timeouts are
    /// retried with exponential backoff up to `max_attempts`, and the last
    /// failure surfaces as a structured [`MediatorError::SourceFault`].
    /// `failed_over_from` marks a task rerouted from a dead source to a
    /// replica; the outage is recorded before the (replica) attempts run.
    /// Genuine task errors (constraint violations, internal errors) are
    /// never retried.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_task<T>(
        &self,
        task_id: usize,
        label: &str,
        source: SourceId,
        source_name: &str,
        failed_over_from: Option<&str>,
        events: &mut Vec<FaultEvent>,
        mut run: impl FnMut() -> Result<T, MediatorError>,
    ) -> Result<T, MediatorError> {
        if let Some(origin) = failed_over_from {
            events.push(FaultEvent {
                task: task_id,
                label: label.to_string(),
                source: origin.to_string(),
                attempt: 0,
                kind: FaultKind::Outage,
                outcome: FaultOutcome::FailedOver,
                backoff_secs: 0.0,
                stall_secs: 0.0,
            });
        }
        let Some(plan) = self.plan else {
            return run();
        };
        let max = self.retry.max_attempts.max(1);
        for attempt in 0..max {
            let event = |kind, outcome, backoff_secs, stall_secs| FaultEvent {
                task: task_id,
                label: label.to_string(),
                source: source_name.to_string(),
                attempt,
                kind,
                outcome,
                backoff_secs,
                stall_secs,
            };
            let (kind, stall) = match plan.decide(source, task_id, attempt) {
                None => return run(),
                Some(InjectedFault::Latency(spike)) => {
                    let spike_secs = spike.as_secs_f64();
                    if spike_secs < self.retry.timeout_secs {
                        // The spike delays the attempt but does not fail it.
                        sleep_secs(spike_secs);
                        events.push(event(
                            FaultKind::Latency,
                            FaultOutcome::Absorbed,
                            0.0,
                            spike_secs,
                        ));
                        return run();
                    }
                    // The stall would exceed the timeout: sleep only the
                    // timeout, then fail the attempt.
                    let stall = if self.retry.timeout_secs.is_finite() {
                        self.retry.timeout_secs
                    } else {
                        spike_secs
                    };
                    sleep_secs(stall);
                    (FaultKind::Latency, stall)
                }
                Some(InjectedFault::Transient) => (FaultKind::Transient, 0.0),
            };
            if attempt + 1 == max {
                events.push(event(kind, FaultOutcome::Surfaced, 0.0, stall));
                return Err(MediatorError::SourceFault {
                    source: source_name.to_string(),
                    task: label.to_string(),
                    kind: kind.name().to_string(),
                    attempts: max,
                });
            }
            let backoff = self.retry.backoff_secs(plan.seed(), task_id, attempt);
            sleep_secs(backoff);
            let outcome = match kind {
                FaultKind::Latency => FaultOutcome::TimedOut,
                _ => FaultOutcome::Retried,
            };
            events.push(event(kind, outcome, backoff, stall));
        }
        unreachable!("max_attempts >= 1 always returns or surfaces")
    }
}

pub(crate) fn sleep_secs(secs: f64) {
    if secs > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(secs));
    }
}

/// SplitMix64-style finalizer folding a word list into one seed; the
/// per-decision RNG streams are derived through this so that every
/// `(seed, site, source, task, attempt)` tuple gets an independent draw.
fn mix(parts: &[u64]) -> u64 {
    let mut acc = 0x9E37_79B9_7F4A_7C15u64;
    for &p in parts {
        let mut z = acc ^ p.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        acc = z ^ (z >> 31);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_source(aig_relstore::Database::new("DB1")).unwrap();
        c.add_source(aig_relstore::Database::new("DB2")).unwrap();
        c
    }

    #[test]
    fn decisions_are_deterministic_and_order_independent() {
        let cfg = FaultConfig {
            seed: 7,
            transient_rate: 0.3,
            latency_rate: 0.3,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(&cfg, &catalog()).unwrap();
        let forward: Vec<_> = (0..50).map(|t| plan.decide(SourceId(1), t, 0)).collect();
        let backward: Vec<_> = (0..50)
            .rev()
            .map(|t| plan.decide(SourceId(1), t, 0))
            .collect();
        let reversed: Vec<_> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed);
        assert!(forward.iter().any(|f| f.is_some()));
        assert!(forward.iter().any(|f| f.is_none()));
    }

    #[test]
    fn mediator_is_never_faulted() {
        let cfg = FaultConfig {
            seed: 1,
            transient_rate: 1.0,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(&cfg, &catalog()).unwrap();
        for t in 0..100 {
            assert_eq!(plan.decide(SourceId::MEDIATOR, t, 0), None);
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let cfg = FaultConfig {
            seed: 3,
            transient_rate: 0.2,
            latency_rate: 0.1,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(&cfg, &catalog()).unwrap();
        let mut transients = 0;
        let mut spikes = 0;
        let n = 20_000;
        for t in 0..n {
            match plan.decide(SourceId(2), t, 0) {
                Some(InjectedFault::Transient) => transients += 1,
                Some(InjectedFault::Latency(_)) => spikes += 1,
                None => {}
            }
        }
        let tf = transients as f64 / n as f64;
        let sf = spikes as f64 / n as f64;
        assert!((0.17..0.23).contains(&tf), "transient rate {tf}");
        assert!((0.08..0.12).contains(&sf), "spike rate {sf}");
    }

    #[test]
    fn named_and_drawn_outages_resolve() {
        let cfg = FaultConfig {
            seed: 5,
            outages: vec!["DB2".to_string()],
            ..FaultConfig::default()
        };
        let cat = catalog();
        let plan = FaultPlan::new(&cfg, &cat).unwrap();
        assert!(plan.source_down(cat.source_id("DB2").unwrap()));
        assert!(!plan.source_down(cat.source_id("DB1").unwrap()));
        assert!(!plan.source_down(SourceId::MEDIATOR));

        let unknown = FaultConfig {
            outages: vec!["DB9".to_string()],
            ..FaultConfig::default()
        };
        assert!(FaultPlan::new(&unknown, &cat).is_err());

        // At rate 1.0 every data source is drawn down, never the mediator.
        let all = FaultConfig {
            outage_rate: 1.0,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(&all, &cat).unwrap();
        for sid in cat.source_ids() {
            assert_eq!(plan.source_down(sid), !sid.is_mediator());
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 8,
            backoff_base_secs: 0.001,
            backoff_cap_secs: 0.016,
            jitter: 0.0,
            timeout_secs: f64::INFINITY,
        };
        let b: Vec<f64> = (0..8).map(|a| policy.backoff_secs(1, 0, a)).collect();
        assert_eq!(b[0], 0.001);
        assert_eq!(b[1], 0.002);
        assert_eq!(b[4], 0.016);
        assert_eq!(b[7], 0.016, "capped");
        // Jitter stays within the band and is deterministic per seed.
        let jittered = RetryPolicy {
            jitter: 0.5,
            ..policy
        };
        for a in 0..8 {
            let x = jittered.backoff_secs(9, 3, a);
            let y = jittered.backoff_secs(9, 3, a);
            assert_eq!(x, y);
            let nominal = (0.001 * (1u64 << a) as f64).min(0.016);
            assert!(x >= nominal * 0.5 && x <= nominal * 1.5, "{x} vs {nominal}");
        }
    }

    #[test]
    fn run_task_retries_then_succeeds_and_accounts() {
        let cfg = FaultConfig {
            seed: 11,
            transient_rate: 1.0,
            ..FaultConfig::default()
        };
        let cat = catalog();
        let plan = FaultPlan::new(&cfg, &cat).unwrap();
        let retry = RetryPolicy {
            max_attempts: 3,
            backoff_base_secs: 0.0,
            backoff_cap_secs: 0.0,
            jitter: 0.0,
            timeout_secs: f64::INFINITY,
        };
        let env = FaultEnv {
            plan: Some(&plan),
            retry: &retry,
        };
        let mut events = Vec::new();
        let mut calls = 0;
        let err = env
            .run_task(0, "q", SourceId(1), "DB1", None, &mut events, || {
                calls += 1;
                Ok(Some(()))
            })
            .unwrap_err();
        assert_eq!(calls, 0, "every attempt faulted before the query ran");
        assert!(
            matches!(err, MediatorError::SourceFault { attempts: 3, .. }),
            "{err}"
        );
        assert_eq!(events.len(), 3);
        assert_eq!(
            events
                .iter()
                .filter(|e| e.outcome == FaultOutcome::Retried)
                .count(),
            2
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| e.outcome == FaultOutcome::Surfaced)
                .count(),
            1
        );
    }
}
