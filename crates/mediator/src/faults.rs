//! Deterministic fault injection and recovery for source execution.
//!
//! The mediator of §5 ships parameterized queries to autonomous relational
//! sources; in a real deployment those sources stall, drop connections, or
//! go down entirely. This module supplies a *seeded* fault model so that
//! every failure scenario is reproducible: a [`FaultPlan`] decides, as a
//! pure function of `(seed, source, task, attempt)`, whether an attempt
//! suffers a transient error, a latency spike, or hits a hard source
//! outage. Both executors drive recovery through the same
//! [`FaultEnv::run_task`] loop — retry with exponential backoff and jitter,
//! a per-attempt timeout bounding injected stalls, and (for outages)
//! failover to a replica declared in the catalog.
//!
//! Because the decision function is pure, the injected fault stream does
//! not depend on thread interleaving: with the same seed, a faulted run
//! that recovers produces byte-identical relations and tagged documents to
//! a fault-free run (see the chaos-matrix tests).

use crate::error::MediatorError;
use crate::integrity::{self, CorruptionKind, RelProfile};
use aig_prng::{Rng, SeedableRng, StdRng};
use aig_relstore::{Catalog, Relation, SourceId};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// Configuration of the deterministic fault model. All rates are per
/// *attempt* probabilities in `[0, 1]`; the mediator pseudo-source is never
/// faulted (the model covers the autonomous sources, not the mediator
/// itself).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault stream; the same seed replays the same faults.
    pub seed: u64,
    /// Probability that an attempt fails with a transient source error.
    pub transient_rate: f64,
    /// Probability that an attempt is delayed by a latency spike.
    pub latency_rate: f64,
    /// Nominal spike duration in seconds (the drawn spike is uniform in
    /// `[0.5, 1.5] × latency_secs`). Spikes at or above the retry policy's
    /// timeout fail the attempt as a timeout.
    pub latency_secs: f64,
    /// Sources (by catalog name) hard-down for the entire run.
    pub outages: Vec<String>,
    /// Probability that any given source is additionally drawn hard-down
    /// from the seed.
    pub outage_rate: f64,
    /// Mid-run outages: `(source name, k)` — the source completes `k` tasks
    /// and then goes hard-down for the rest of the run. `k = 0` is a
    /// whole-run outage, equivalent to listing the source in `outages`.
    pub dies_after: Vec<(String, usize)>,
    /// Probability that an attempt's shipped relation is corrupted with a
    /// seeded wrong-answer mutation (a [`CorruptionKind`] drawn uniformly).
    pub corrupt_rate: f64,
    /// Probability that the attempt's primary table has vanished while its
    /// source stays up; the attempt fails naming the table. Re-decided per
    /// attempt, so retries can find the table back.
    pub table_outage_rate: f64,
    /// Probability that an attempt running at a failover replica returns a
    /// stale answer lagging the primary: the shipped relation is truncated
    /// by up to [`FaultConfig::stale_replica_rows`] trailing rows.
    pub stale_replica_rate: f64,
    /// Maximum replica lag in rows (the drawn lag is uniform in `1..=max`).
    pub stale_replica_rows: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            transient_rate: 0.0,
            latency_rate: 0.0,
            latency_secs: 0.001,
            outages: Vec::new(),
            outage_rate: 0.0,
            dies_after: Vec::new(),
            corrupt_rate: 0.0,
            table_outage_rate: 0.0,
            stale_replica_rate: 0.0,
            stale_replica_rows: 2,
        }
    }
}

/// A per-request deadline budget: a wall-clock start plus a budget in
/// seconds. Bound once when a request enters execution
/// ([`crate::plan::ExecPolicy::deadline_secs`] →
/// [`crate::exec::ExecOptions::deadline`]) and consulted by both executors
/// (no task starts past the deadline) and the retry loop (no attempt starts
/// past it; backoff and stall sleeps are clamped to the remaining budget).
/// Because the only in-attempt sleeps are the injected stall — itself
/// capped at the per-attempt timeout — and the clamped backoff, a run
/// never overshoots its budget by more than one attempt-timeout.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    start: Instant,
    budget_secs: f64,
}

impl Deadline {
    /// A deadline whose budget starts counting now. Negative budgets clamp
    /// to zero (already expired).
    pub fn starting_now(budget_secs: f64) -> Deadline {
        Deadline {
            start: Instant::now(),
            budget_secs: budget_secs.max(0.0),
        }
    }

    pub fn budget_secs(&self) -> f64 {
        self.budget_secs
    }

    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Seconds of budget left (zero once expired, never negative).
    pub fn remaining_secs(&self) -> f64 {
        (self.budget_secs - self.elapsed_secs()).max(0.0)
    }

    pub fn expired(&self) -> bool {
        self.elapsed_secs() >= self.budget_secs
    }

    /// The absolute instant the budget runs out; None for non-finite
    /// budgets (they can never expire).
    pub fn expires_at(&self) -> Option<Instant> {
        self.budget_secs
            .is_finite()
            .then(|| self.start + Duration::from_secs_f64(self.budget_secs))
    }

    /// The structured error naming the task the budget ran out at.
    pub fn exceeded_at(&self, task: &str) -> MediatorError {
        MediatorError::DeadlineExceeded {
            task: task.to_string(),
            budget_secs: self.budget_secs,
            elapsed_secs: self.elapsed_secs(),
        }
    }
}

/// Retry/backoff/timeout policy for source-task execution. The backoff is
/// exponential with deterministic jitter (seeded per task and attempt, so
/// reruns sleep the same schedule).
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per task including the first (1 = no retries).
    pub max_attempts: usize,
    /// First backoff sleep in seconds; doubles every retry.
    pub backoff_base_secs: f64,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap_secs: f64,
    /// Jitter fraction in `[0, 1]`: each sleep is scaled by a deterministic
    /// factor in `[1 - jitter, 1 + jitter]`. Values outside `[0, 1]` are
    /// clamped into it (and NaN disables jitter): a fraction above 1 would
    /// permit negative sleeps, below 0 an inverted band.
    pub jitter: f64,
    /// Per-attempt timeout bounding injected stalls: a latency spike at or
    /// above this fails the attempt (counted as a timeout) after sleeping
    /// only the timeout, never the full spike.
    pub timeout_secs: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_secs: 0.0005,
            backoff_cap_secs: 0.01,
            jitter: 0.5,
            timeout_secs: f64::INFINITY,
        }
    }
}

impl RetryPolicy {
    /// A policy that surfaces the first fault (no retries, no timeout).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The deterministic backoff sleep before retry number `attempt + 1`.
    pub fn backoff_secs(&self, seed: u64, task: usize, attempt: usize) -> f64 {
        let raw = self.backoff_base_secs * (1u64 << attempt.min(32)) as f64;
        let capped = raw.min(self.backoff_cap_secs);
        let jitter = if self.jitter.is_nan() {
            0.0
        } else {
            self.jitter.clamp(0.0, 1.0)
        };
        if jitter <= 0.0 || capped <= 0.0 {
            return capped;
        }
        let mut rng = StdRng::seed_from_u64(mix(&[seed, 0xBACC_0FF5, task as u64, attempt as u64]));
        let factor = rng.gen_range(1.0 - jitter..1.0 + jitter);
        capped * factor
    }
}

/// What the fault plan injects into one attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectedFault {
    /// The attempt fails immediately with a transient source error.
    Transient,
    /// The attempt is stalled for the given duration before the query runs;
    /// stalls reaching the policy timeout fail the attempt instead.
    Latency(Duration),
}

/// Kind tag of a recorded fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    Transient,
    Latency,
    Outage,
    /// The attempt's primary table vanished while its source stayed up.
    TableOutage,
    /// The attempt shipped a corrupted relation that the integrity guard
    /// rejected at the task boundary.
    CorruptRow,
}

impl FaultKind {
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Latency => "latency",
            FaultKind::Outage => "outage",
            FaultKind::TableOutage => "table-outage",
            FaultKind::CorruptRow => "corrupt-row",
        }
    }
}

/// How one injected fault was resolved. Every fault gets exactly one
/// outcome, which is what makes the accounting identity hold:
/// `injected = retried + timed_out + failed_over + surfaced` (absorbed
/// latency spikes never failed an attempt and are counted separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultOutcome {
    /// A transient error was retried after backoff.
    Retried,
    /// A latency spike hit the per-attempt timeout and was retried.
    TimedOut,
    /// A hard outage was routed to a replica source.
    FailedOver,
    /// The fault exhausted the retry budget and surfaced as the run error.
    Surfaced,
    /// A sub-timeout latency spike delayed the attempt without failing it.
    Absorbed,
}

impl FaultOutcome {
    pub fn name(self) -> &'static str {
        match self {
            FaultOutcome::Retried => "retried",
            FaultOutcome::TimedOut => "timed_out",
            FaultOutcome::FailedOver => "failed_over",
            FaultOutcome::Surfaced => "surfaced",
            FaultOutcome::Absorbed => "absorbed",
        }
    }
}

/// One recorded injection: which task/attempt it hit, what was injected,
/// how it resolved, and the real seconds slept for backoff and stall.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    pub task: usize,
    pub label: String,
    pub source: String,
    pub attempt: usize,
    pub kind: FaultKind,
    pub outcome: FaultOutcome,
    pub backoff_secs: f64,
    pub stall_secs: f64,
}

/// Everything the fault layer did during one execution: the event log plus
/// how often the scheduler re-planned the surviving subgraph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceLog {
    pub events: Vec<FaultEvent>,
    /// `Schedule` re-runs on the surviving subgraph after an outage.
    pub replans: usize,
}

impl ResilienceLog {
    /// Events in the canonical `(task, attempt, kind)` order — the parallel
    /// executor appends in completion order, which varies with thread
    /// interleaving.
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut events = self.events.clone();
        events.sort_by(|a, b| {
            (a.task, a.attempt, a.kind, a.outcome).cmp(&(b.task, b.attempt, b.kind, b.outcome))
        });
        events
    }

    pub fn count(&self, outcome: FaultOutcome) -> usize {
        self.events.iter().filter(|e| e.outcome == outcome).count()
    }

    /// Injected faults excluding absorbed spikes (the identity's left side).
    pub fn injected(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.outcome != FaultOutcome::Absorbed)
            .count()
    }
}

/// The wrong-answer fault taxonomy tracked by the integrity ledger. Unlike
/// the fail-stop [`FaultKind`]s, every one of these can put *wrong data*
/// in front of the mediator — the ledger exists to prove none of it
/// reaches the published document silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WrongAnswerKind {
    /// A seeded cell/row mutation of a shipped relation.
    CorruptRow(CorruptionKind),
    /// The attempt's primary table vanished while its source stayed up.
    TableOutage,
    /// A failover replica answered with a truncated (lagging) relation.
    StaleReplica,
}

impl WrongAnswerKind {
    pub fn name(self) -> &'static str {
        match self {
            WrongAnswerKind::CorruptRow(_) => "corrupt-row",
            WrongAnswerKind::TableOutage => "table-outage",
            WrongAnswerKind::StaleReplica => "stale-replica",
        }
    }

    /// The mutation detail for corruptions, empty otherwise.
    pub fn detail(self) -> &'static str {
        match self {
            WrongAnswerKind::CorruptRow(k) => k.name(),
            _ => "",
        }
    }
}

/// How one wrong-answer injection resolved. The accounting identity is
/// `injected = masked_by_retry + detected_by_guard +
/// detected_by_constraint + undetected`; the chaos harness and the CI
/// perf gate then pin `undetected` to zero (or to runs whose output is
/// byte-identical to the clean run, i.e. the corruption was absorbed by
/// later processing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IntegrityOutcome {
    /// The guard detected the fault and a subsequent attempt replaced the
    /// data — the run's output is byte-identical to a clean run.
    MaskedByRetry,
    /// The guard detected the fault on the final attempt; the run surfaced
    /// a structured [`MediatorError::IntegrityViolation`].
    DetectedByGuard,
    /// The fault slipped past the task-boundary guard but the document
    /// constraint check ([`aig_xml::ConstraintSet::check`]) caught it.
    DetectedByConstraint,
    /// No layer detected the fault (yet). Document-level reconciliation
    /// upgrades these to [`IntegrityOutcome::DetectedByConstraint`]; any
    /// that remain are the silent corruptions the harness asserts against.
    Undetected,
}

impl IntegrityOutcome {
    pub fn name(self) -> &'static str {
        match self {
            IntegrityOutcome::MaskedByRetry => "masked_by_retry",
            IntegrityOutcome::DetectedByGuard => "detected_by_guard",
            IntegrityOutcome::DetectedByConstraint => "detected_by_constraint",
            IntegrityOutcome::Undetected => "undetected",
        }
    }
}

/// One recorded wrong-answer injection: where it hit, what was injected,
/// how it resolved, and which check caught it (empty while undetected).
#[derive(Debug, Clone, PartialEq)]
pub struct IntegrityEvent {
    pub task: usize,
    pub label: String,
    pub source: String,
    pub table: String,
    pub attempt: usize,
    pub kind: WrongAnswerKind,
    pub outcome: IntegrityOutcome,
    /// The violated check, e.g. `key(treatment[SSN, trId])` or
    /// `table-available(procedure)`.
    pub constraint: String,
}

/// The integrity ledger of one execution: every wrong-answer injection and
/// its resolution. Reported in the `integrity` section of the RunReport
/// (schema v6).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntegrityLog {
    pub events: Vec<IntegrityEvent>,
}

impl IntegrityLog {
    /// Events in canonical `(task, attempt, kind)` order — the parallel
    /// executor appends in completion order.
    pub fn sorted_events(&self) -> Vec<IntegrityEvent> {
        let mut events = self.events.clone();
        events.sort_by(|a, b| {
            (a.task, a.attempt, a.kind, a.outcome).cmp(&(b.task, b.attempt, b.kind, b.outcome))
        });
        events
    }

    pub fn count(&self, outcome: IntegrityOutcome) -> usize {
        self.events.iter().filter(|e| e.outcome == outcome).count()
    }

    /// Total wrong-answer injections (the ledger identity's left side).
    pub fn injected(&self) -> usize {
        self.events.len()
    }

    /// Injections no layer has detected. Zero on every run whose output is
    /// trusted; the chaos harness asserts this (or byte-identity with the
    /// clean run) across the whole fault matrix.
    pub fn undetected(&self) -> usize {
        self.count(IntegrityOutcome::Undetected)
    }

    /// Document-level reconciliation: the constraint check on the tagged
    /// document found violations, so every injection still marked
    /// [`IntegrityOutcome::Undetected`] is claimed by the constraint layer.
    pub fn resolve_undetected(&mut self, constraint: &str) {
        for e in &mut self.events {
            if e.outcome == IntegrityOutcome::Undetected {
                e.outcome = IntegrityOutcome::DetectedByConstraint;
                e.constraint = constraint.to_string();
            }
        }
    }

    /// The ledger identity `injected = masked_by_retry +
    /// detected_by_guard + detected_by_constraint` — every injection was
    /// masked or detected (equivalently, [`IntegrityLog::undetected`] is
    /// zero). False on defense-off runs where corruption flowed through;
    /// the chaos harness asserts it (or byte-identity with the clean run)
    /// everywhere else.
    pub fn balanced(&self) -> bool {
        self.injected()
            == self.count(IntegrityOutcome::MaskedByRetry)
                + self.count(IntegrityOutcome::DetectedByGuard)
                + self.count(IntegrityOutcome::DetectedByConstraint)
    }
}

/// The bound fault model: configuration plus the resolved set of hard-down
/// sources. Decisions are pure functions of the seed, so the plan can be
/// shared (or cloned) freely across worker threads.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    cfg: FaultConfig,
    down: BTreeSet<SourceId>,
    /// Mid-run outage thresholds: the source dies after completing this
    /// many tasks (always >= 1; zero thresholds fold into `down`).
    down_after: BTreeMap<SourceId, usize>,
    /// Sources a degraded request skips entirely: the mediator never
    /// contacts them, so no fault of any kind fires there (they behave
    /// like the mediator pseudo-source for the fault model).
    skip: BTreeSet<SourceId>,
}

impl FaultPlan {
    /// Binds `cfg` to a catalog: named outages are resolved (unknown names
    /// are an error) and seeded per-source outages drawn. The mediator
    /// pseudo-source is never taken down.
    pub fn new(cfg: &FaultConfig, catalog: &Catalog) -> Result<FaultPlan, MediatorError> {
        let mut down = BTreeSet::new();
        for name in &cfg.outages {
            let sid = catalog.source_id(name).map_err(MediatorError::Store)?;
            if sid.is_mediator() {
                return Err(MediatorError::Internal(
                    "cannot declare an outage of the mediator pseudo-source".to_string(),
                ));
            }
            down.insert(sid);
        }
        if cfg.outage_rate > 0.0 {
            for sid in catalog.source_ids() {
                if sid.is_mediator() {
                    continue;
                }
                let mut rng = StdRng::seed_from_u64(mix(&[cfg.seed, 0x0007_A6E5, sid.0 as u64]));
                if rng.gen_bool(cfg.outage_rate) {
                    down.insert(sid);
                }
            }
        }
        let mut down_after = BTreeMap::new();
        for (name, k) in &cfg.dies_after {
            let sid = catalog.source_id(name).map_err(MediatorError::Store)?;
            if sid.is_mediator() {
                return Err(MediatorError::Internal(
                    "cannot declare an outage of the mediator pseudo-source".to_string(),
                ));
            }
            if *k == 0 {
                down.insert(sid);
            } else {
                down_after.insert(sid, *k);
            }
        }
        Ok(FaultPlan {
            cfg: cfg.clone(),
            down,
            down_after,
            skip: BTreeSet::new(),
        })
    }

    /// A copy of this plan with `sources` exempted from every fault kind.
    /// A degraded request serves those sources as empty views without ever
    /// contacting them, so neither outages nor per-attempt faults can fire
    /// there; everything else keeps its original seeded decisions.
    pub fn with_skipped(&self, sources: &[SourceId]) -> FaultPlan {
        let mut plan = self.clone();
        plan.skip.extend(sources.iter().copied());
        plan
    }

    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether `source` is hard-down for the entire run.
    pub fn source_down(&self, source: SourceId) -> bool {
        !self.skip.contains(&source) && self.down.contains(&source)
    }

    /// The mid-run outage threshold of `source`: it dies after completing
    /// this many tasks (None = no mid-run outage declared). Executors track
    /// per-source completion counts and treat the source as hard-down once
    /// the threshold is reached.
    pub fn outage_after(&self, source: SourceId) -> Option<usize> {
        if self.skip.contains(&source) {
            return None;
        }
        self.down_after.get(&source).copied()
    }

    /// Whether any mid-run outage is declared (lets executors skip the
    /// completion-count bookkeeping entirely when not).
    pub fn has_mid_run_outages(&self) -> bool {
        !self.down_after.is_empty()
    }

    /// The fault injected into attempt `attempt` of `task` at `source`
    /// (None = the attempt runs cleanly). Pure in its arguments: the same
    /// plan returns the same answer regardless of execution order.
    pub fn decide(&self, source: SourceId, task: usize, attempt: usize) -> Option<InjectedFault> {
        if source.is_mediator() || self.skip.contains(&source) {
            return None;
        }
        if self.cfg.transient_rate <= 0.0 && self.cfg.latency_rate <= 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(mix(&[
            self.cfg.seed,
            0xFA17_57A6,
            source.0 as u64,
            task as u64,
            attempt as u64,
        ]));
        let draw = rng.gen_range(0.0f64..1.0);
        if draw < self.cfg.transient_rate {
            Some(InjectedFault::Transient)
        } else if draw < self.cfg.transient_rate + self.cfg.latency_rate {
            let spike = self.cfg.latency_secs * rng.gen_range(0.5f64..1.5);
            Some(InjectedFault::Latency(Duration::from_secs_f64(
                spike.max(0.0),
            )))
        } else {
            None
        }
    }

    /// Whether any wrong-answer fault (corruption, table outage, stale
    /// replica) is configured — executors then derive integrity profiles
    /// for their source tasks.
    pub fn has_wrong_answer_faults(&self) -> bool {
        self.cfg.corrupt_rate > 0.0
            || self.cfg.table_outage_rate > 0.0
            || self.cfg.stale_replica_rate > 0.0
    }

    /// Whether attempt `attempt` of `task` finds `table` vanished at
    /// `source` (the source itself stays up). Pure in
    /// `(seed, source, table, task, attempt)`: re-decided per attempt, so a
    /// retry can find the table back.
    pub fn decide_table_outage(
        &self,
        source: SourceId,
        table: &str,
        task: usize,
        attempt: usize,
    ) -> bool {
        if source.is_mediator()
            || self.skip.contains(&source)
            || self.cfg.table_outage_rate <= 0.0
            || table.is_empty()
        {
            return false;
        }
        let mut rng = StdRng::seed_from_u64(mix(&[
            self.cfg.seed,
            0x7AB7_E007,
            source.0 as u64,
            fnv64(table),
            task as u64,
            attempt as u64,
        ]));
        rng.gen_bool(self.cfg.table_outage_rate)
    }

    /// The wrong-answer corruption injected into attempt `attempt` of
    /// `task` at `source` (None = the relation ships clean). Pure in
    /// `(seed, source, table, task, attempt)`.
    pub fn decide_corruption(
        &self,
        source: SourceId,
        table: &str,
        task: usize,
        attempt: usize,
    ) -> Option<CorruptionKind> {
        if source.is_mediator()
            || self.skip.contains(&source)
            || self.cfg.corrupt_rate <= 0.0
            || table.is_empty()
        {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(mix(&[
            self.cfg.seed,
            0xC0BB_ED05,
            source.0 as u64,
            fnv64(table),
            task as u64,
            attempt as u64,
        ]));
        if !rng.gen_bool(self.cfg.corrupt_rate) {
            return None;
        }
        Some(CorruptionKind::ALL[rng.gen_range(0..CorruptionKind::ALL.len())])
    }

    /// The RNG stream driving a corruption's mutation site, independent of
    /// the decision stream (and equally pure).
    pub fn corruption_rng(
        &self,
        source: SourceId,
        table: &str,
        task: usize,
        attempt: usize,
    ) -> StdRng {
        StdRng::seed_from_u64(mix(&[
            self.cfg.seed,
            0xC0BB_ED06,
            source.0 as u64,
            fnv64(table),
            task as u64,
            attempt as u64,
        ]))
    }

    /// The replica lag (in trailing rows dropped) of attempt `attempt` of
    /// `task` when it runs at a failover target (None = the replica is
    /// caught up). Pure in `(seed, source, table, task, attempt)`.
    pub fn decide_stale(
        &self,
        source: SourceId,
        table: &str,
        task: usize,
        attempt: usize,
    ) -> Option<usize> {
        if source.is_mediator()
            || self.skip.contains(&source)
            || self.cfg.stale_replica_rate <= 0.0
            || self.cfg.stale_replica_rows == 0
        {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(mix(&[
            self.cfg.seed,
            0x57A7_E00D,
            source.0 as u64,
            fnv64(table),
            task as u64,
            attempt as u64,
        ]));
        if !rng.gen_bool(self.cfg.stale_replica_rate) {
            return None;
        }
        Some(rng.gen_range(1..self.cfg.stale_replica_rows + 1))
    }
}

/// The per-execution fault environment both executors run tasks through.
#[derive(Clone, Copy)]
pub(crate) struct FaultEnv<'a> {
    pub plan: Option<&'a FaultPlan>,
    pub retry: &'a RetryPolicy,
    /// The request's deadline budget: no attempt starts past it and every
    /// sleep is clamped to the remaining budget. None = unbounded.
    pub deadline: Option<&'a Deadline>,
}

/// Everything the fault layer needs to know about the task it wraps —
/// bundled so both executors call [`FaultEnv::run_task`] identically.
pub(crate) struct TaskFaultCtx<'a> {
    pub task_id: usize,
    pub label: &'a str,
    pub source: SourceId,
    pub source_name: &'a str,
    /// The primary stored table the task reads (wrong-answer fault
    /// coordinate); None for mediator tasks.
    pub table: Option<&'a str>,
    /// The original source's name when this task was rerouted to a replica.
    pub failed_over_from: Option<&'a str>,
    /// Integrity profile of the shipped relation; None disables both
    /// corruption injection and guard checks for this task.
    pub profile: Option<&'a RelProfile>,
    /// Whether the task-boundary guard checks run (detections feed the
    /// retry loop; final-attempt detections surface as
    /// [`MediatorError::IntegrityViolation`]).
    pub check_integrity: bool,
}

impl FaultEnv<'_> {
    /// Sleeps `secs`, clamped to the remaining deadline budget. Event logs
    /// record the *nominal* (seeded, deterministic) durations so a run that
    /// completes inside its budget stays byte-identical to an unbounded
    /// run; only the real sleep is shortened.
    fn nap(&self, secs: f64) {
        let secs = match self.deadline {
            Some(d) => secs.min(d.remaining_secs()),
            None => secs,
        };
        sleep_secs(secs);
    }

    /// Runs one task under the fault model: injected latency spikes are
    /// slept (capped at the timeout), transient errors, vanished tables and
    /// timeouts are retried with exponential backoff up to `max_attempts`,
    /// and the last failure surfaces as a structured
    /// [`MediatorError::SourceFault`]. Shipped relations then pass the
    /// wrong-answer layer: seeded corruptions and replica staleness are
    /// injected, the integrity guard checks the result, and every injection
    /// is recorded in `ledger` with its resolution. A guard detection on a
    /// non-final attempt retries (masking the corruption); on the final
    /// attempt it surfaces as [`MediatorError::IntegrityViolation`].
    /// Genuine task errors (constraint violations, internal errors) are
    /// never retried.
    pub(crate) fn run_task(
        &self,
        ctx: &TaskFaultCtx<'_>,
        events: &mut Vec<FaultEvent>,
        ledger: &mut Vec<IntegrityEvent>,
        mut run: impl FnMut() -> Result<Option<Relation>, MediatorError>,
    ) -> Result<Option<Relation>, MediatorError> {
        if let Some(origin) = ctx.failed_over_from {
            events.push(FaultEvent {
                task: ctx.task_id,
                label: ctx.label.to_string(),
                source: origin.to_string(),
                attempt: 0,
                kind: FaultKind::Outage,
                outcome: FaultOutcome::FailedOver,
                backoff_secs: 0.0,
                stall_secs: 0.0,
            });
        }
        let Some(plan) = self.plan else {
            if let Some(d) = self.deadline {
                if d.expired() {
                    return Err(d.exceeded_at(ctx.label));
                }
            }
            return run();
        };
        let table = ctx.table.unwrap_or("");
        let max = self.retry.max_attempts.max(1);
        for attempt in 0..max {
            // No attempt starts once the deadline budget is spent: the
            // request surfaces a structured error instead of burning more
            // retries it can never finish.
            if let Some(d) = self.deadline {
                if d.expired() {
                    return Err(d.exceeded_at(ctx.label));
                }
            }
            let event = |kind, outcome, backoff_secs, stall_secs| FaultEvent {
                task: ctx.task_id,
                label: ctx.label.to_string(),
                source: ctx.source_name.to_string(),
                attempt,
                kind,
                outcome,
                backoff_secs,
                stall_secs,
            };
            let ledger_event = |kind, outcome, constraint: String| IntegrityEvent {
                task: ctx.task_id,
                label: ctx.label.to_string(),
                source: ctx.source_name.to_string(),
                table: table.to_string(),
                attempt,
                kind,
                outcome,
                constraint,
            };
            // Fail-stop faults first (the pre-existing decision stream,
            // unchanged so fail-stop chaos runs replay byte-identically).
            let mut failure: Option<(FaultKind, f64)> = None;
            match plan.decide(ctx.source, ctx.task_id, attempt) {
                None => {}
                Some(InjectedFault::Latency(spike)) => {
                    let spike_secs = spike.as_secs_f64();
                    if spike_secs < self.retry.timeout_secs {
                        // The spike delays the attempt but does not fail it.
                        self.nap(spike_secs);
                        events.push(event(
                            FaultKind::Latency,
                            FaultOutcome::Absorbed,
                            0.0,
                            spike_secs,
                        ));
                    } else {
                        // The stall would exceed the timeout: sleep only
                        // the timeout, then fail the attempt.
                        let stall = if self.retry.timeout_secs.is_finite() {
                            self.retry.timeout_secs
                        } else {
                            spike_secs
                        };
                        self.nap(stall);
                        failure = Some((FaultKind::Latency, stall));
                    }
                }
                Some(InjectedFault::Transient) => failure = Some((FaultKind::Transient, 0.0)),
            }
            // Then the vanished-table model: the source answers, but this
            // attempt's primary table is gone.
            let mut table_gone = false;
            if failure.is_none()
                && plan.decide_table_outage(ctx.source, table, ctx.task_id, attempt)
            {
                failure = Some((FaultKind::TableOutage, 0.0));
                table_gone = true;
            }
            if let Some((kind, stall)) = failure {
                let availability = || format!("table-available({table})");
                if attempt + 1 == max {
                    events.push(event(kind, FaultOutcome::Surfaced, 0.0, stall));
                    if table_gone {
                        ledger.push(ledger_event(
                            WrongAnswerKind::TableOutage,
                            IntegrityOutcome::DetectedByGuard,
                            availability(),
                        ));
                    }
                    return Err(MediatorError::SourceFault {
                        source: ctx.source_name.to_string(),
                        task: ctx.label.to_string(),
                        kind: if table_gone {
                            format!("{}({table})", kind.name())
                        } else {
                            kind.name().to_string()
                        },
                        attempts: max,
                    });
                }
                let backoff = self.retry.backoff_secs(plan.seed(), ctx.task_id, attempt);
                self.nap(backoff);
                let outcome = match kind {
                    FaultKind::Latency => FaultOutcome::TimedOut,
                    _ => FaultOutcome::Retried,
                };
                events.push(event(kind, outcome, backoff, stall));
                if table_gone {
                    ledger.push(ledger_event(
                        WrongAnswerKind::TableOutage,
                        IntegrityOutcome::MaskedByRetry,
                        availability(),
                    ));
                }
                continue;
            }
            // The attempt runs; genuine errors are never retried.
            let mut out = run()?;
            if let Some(rel) = out.as_mut() {
                // Stale replica: a failover target answers with a relation
                // lagging the primary by a seeded number of trailing rows.
                // Invisible at this boundary by design — the document-level
                // constraint check is the layer that can expose it.
                if ctx.failed_over_from.is_some() && !rel.is_empty() {
                    if let Some(lag) = plan.decide_stale(ctx.source, table, ctx.task_id, attempt) {
                        let keep = rel.len().saturating_sub(lag);
                        if keep < rel.len() {
                            rel.truncate(keep);
                            ledger.push(ledger_event(
                                WrongAnswerKind::StaleReplica,
                                IntegrityOutcome::Undetected,
                                String::new(),
                            ));
                        }
                    }
                }
                // Seeded wrong-answer corruption of the shipped relation.
                let mut corrupted: Option<CorruptionKind> = None;
                if let (Some(profile), Some(kind)) = (
                    ctx.profile,
                    plan.decide_corruption(ctx.source, table, ctx.task_id, attempt),
                ) {
                    let mut rng = plan.corruption_rng(ctx.source, table, ctx.task_id, attempt);
                    corrupted = integrity::corrupt_relation(rel, kind, &mut rng, profile);
                }
                // The task-boundary guard: key uniqueness, type/NULL and
                // arity conformance against the catalog schema.
                if ctx.check_integrity {
                    if let Some(profile) = ctx.profile {
                        if let Some(finding) = integrity::check_relation(rel, profile) {
                            let violation = || MediatorError::IntegrityViolation {
                                task: ctx.label.to_string(),
                                source: ctx.source_name.to_string(),
                                table: table.to_string(),
                                constraint: finding.constraint.clone(),
                                value: finding.value.clone(),
                            };
                            let Some(kind) = corrupted else {
                                // Genuine bad data (nothing injected this
                                // attempt): surface immediately, a retry
                                // would re-fetch the same rows.
                                return Err(violation());
                            };
                            if attempt + 1 == max {
                                events.push(event(
                                    FaultKind::CorruptRow,
                                    FaultOutcome::Surfaced,
                                    0.0,
                                    0.0,
                                ));
                                ledger.push(ledger_event(
                                    WrongAnswerKind::CorruptRow(kind),
                                    IntegrityOutcome::DetectedByGuard,
                                    finding.constraint.clone(),
                                ));
                                return Err(violation());
                            }
                            let backoff =
                                self.retry.backoff_secs(plan.seed(), ctx.task_id, attempt);
                            self.nap(backoff);
                            events.push(event(
                                FaultKind::CorruptRow,
                                FaultOutcome::Retried,
                                backoff,
                                0.0,
                            ));
                            ledger.push(ledger_event(
                                WrongAnswerKind::CorruptRow(kind),
                                IntegrityOutcome::MaskedByRetry,
                                finding.constraint.clone(),
                            ));
                            continue;
                        }
                    }
                }
                if let Some(kind) = corrupted {
                    // Defense off (or no profile): the corruption flows on.
                    ledger.push(ledger_event(
                        WrongAnswerKind::CorruptRow(kind),
                        IntegrityOutcome::Undetected,
                        String::new(),
                    ));
                }
            }
            return Ok(out);
        }
        unreachable!("max_attempts >= 1 always returns or surfaces")
    }
}

pub(crate) fn sleep_secs(secs: f64) {
    if secs > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(secs));
    }
}

/// SplitMix64-style finalizer folding a word list into one seed; the
/// per-decision RNG streams are derived through this so that every
/// `(seed, site, source, task, attempt)` tuple gets an independent draw.
pub(crate) fn mix(parts: &[u64]) -> u64 {
    let mut acc = 0x9E37_79B9_7F4A_7C15u64;
    for &p in parts {
        let mut z = acc ^ p.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        acc = z ^ (z >> 31);
    }
    acc
}

/// FNV-1a hash of a table name, folding the string coordinate of the
/// wrong-answer fault streams into the `mix` word list.
fn fnv64(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_source(aig_relstore::Database::new("DB1")).unwrap();
        c.add_source(aig_relstore::Database::new("DB2")).unwrap();
        c
    }

    #[test]
    fn decisions_are_deterministic_and_order_independent() {
        let cfg = FaultConfig {
            seed: 7,
            transient_rate: 0.3,
            latency_rate: 0.3,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(&cfg, &catalog()).unwrap();
        let forward: Vec<_> = (0..50).map(|t| plan.decide(SourceId(1), t, 0)).collect();
        let backward: Vec<_> = (0..50)
            .rev()
            .map(|t| plan.decide(SourceId(1), t, 0))
            .collect();
        let reversed: Vec<_> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed);
        assert!(forward.iter().any(|f| f.is_some()));
        assert!(forward.iter().any(|f| f.is_none()));
    }

    #[test]
    fn mediator_is_never_faulted() {
        let cfg = FaultConfig {
            seed: 1,
            transient_rate: 1.0,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(&cfg, &catalog()).unwrap();
        for t in 0..100 {
            assert_eq!(plan.decide(SourceId::MEDIATOR, t, 0), None);
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let cfg = FaultConfig {
            seed: 3,
            transient_rate: 0.2,
            latency_rate: 0.1,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(&cfg, &catalog()).unwrap();
        let mut transients = 0;
        let mut spikes = 0;
        let n = 20_000;
        for t in 0..n {
            match plan.decide(SourceId(2), t, 0) {
                Some(InjectedFault::Transient) => transients += 1,
                Some(InjectedFault::Latency(_)) => spikes += 1,
                None => {}
            }
        }
        let tf = transients as f64 / n as f64;
        let sf = spikes as f64 / n as f64;
        assert!((0.17..0.23).contains(&tf), "transient rate {tf}");
        assert!((0.08..0.12).contains(&sf), "spike rate {sf}");
    }

    #[test]
    fn named_and_drawn_outages_resolve() {
        let cfg = FaultConfig {
            seed: 5,
            outages: vec!["DB2".to_string()],
            ..FaultConfig::default()
        };
        let cat = catalog();
        let plan = FaultPlan::new(&cfg, &cat).unwrap();
        assert!(plan.source_down(cat.source_id("DB2").unwrap()));
        assert!(!plan.source_down(cat.source_id("DB1").unwrap()));
        assert!(!plan.source_down(SourceId::MEDIATOR));

        let unknown = FaultConfig {
            outages: vec!["DB9".to_string()],
            ..FaultConfig::default()
        };
        assert!(FaultPlan::new(&unknown, &cat).is_err());

        // At rate 1.0 every data source is drawn down, never the mediator.
        let all = FaultConfig {
            outage_rate: 1.0,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(&all, &cat).unwrap();
        for sid in cat.source_ids() {
            assert_eq!(plan.source_down(sid), !sid.is_mediator());
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 8,
            backoff_base_secs: 0.001,
            backoff_cap_secs: 0.016,
            jitter: 0.0,
            timeout_secs: f64::INFINITY,
        };
        let b: Vec<f64> = (0..8).map(|a| policy.backoff_secs(1, 0, a)).collect();
        assert_eq!(b[0], 0.001);
        assert_eq!(b[1], 0.002);
        assert_eq!(b[4], 0.016);
        assert_eq!(b[7], 0.016, "capped");
        // Jitter stays within the band and is deterministic per seed.
        let jittered = RetryPolicy {
            jitter: 0.5,
            ..policy
        };
        for a in 0..8 {
            let x = jittered.backoff_secs(9, 3, a);
            let y = jittered.backoff_secs(9, 3, a);
            assert_eq!(x, y);
            let nominal = (0.001 * (1u64 << a) as f64).min(0.016);
            assert!(x >= nominal * 0.5 && x <= nominal * 1.5, "{x} vs {nominal}");
        }
    }

    #[test]
    fn run_task_retries_then_succeeds_and_accounts() {
        let cfg = FaultConfig {
            seed: 11,
            transient_rate: 1.0,
            ..FaultConfig::default()
        };
        let cat = catalog();
        let plan = FaultPlan::new(&cfg, &cat).unwrap();
        let retry = RetryPolicy {
            max_attempts: 3,
            backoff_base_secs: 0.0,
            backoff_cap_secs: 0.0,
            jitter: 0.0,
            timeout_secs: f64::INFINITY,
        };
        let env = FaultEnv {
            plan: Some(&plan),
            retry: &retry,
            deadline: None,
        };
        let ctx = TaskFaultCtx {
            task_id: 0,
            label: "q",
            source: SourceId(1),
            source_name: "DB1",
            table: None,
            failed_over_from: None,
            profile: None,
            check_integrity: false,
        };
        let mut events = Vec::new();
        let mut ledger = Vec::new();
        let mut calls = 0;
        let err = env
            .run_task(&ctx, &mut events, &mut ledger, || {
                calls += 1;
                Ok(Some(Relation::empty(vec!["a".into()])))
            })
            .unwrap_err();
        assert_eq!(calls, 0, "every attempt faulted before the query ran");
        assert!(ledger.is_empty());
        assert!(
            matches!(err, MediatorError::SourceFault { attempts: 3, .. }),
            "{err}"
        );
        assert_eq!(events.len(), 3);
        assert_eq!(
            events
                .iter()
                .filter(|e| e.outcome == FaultOutcome::Retried)
                .count(),
            2
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| e.outcome == FaultOutcome::Surfaced)
                .count(),
            1
        );
    }

    #[test]
    fn wrong_answer_deciders_are_pure_and_rate_honoring() {
        let cfg = FaultConfig {
            seed: 21,
            corrupt_rate: 0.25,
            table_outage_rate: 0.1,
            stale_replica_rate: 0.5,
            stale_replica_rows: 3,
            ..FaultConfig::default()
        };
        let cat = catalog();
        let plan = FaultPlan::new(&cfg, &cat).unwrap();
        assert!(plan.has_wrong_answer_faults());
        let mut corrupted = 0;
        let mut gone = 0;
        let mut stale = 0;
        let n = 8_000;
        for t in 0..n {
            let c = plan.decide_corruption(SourceId(1), "patient", t, 0);
            assert_eq!(c, plan.decide_corruption(SourceId(1), "patient", t, 0));
            corrupted += c.is_some() as usize;
            let g = plan.decide_table_outage(SourceId(1), "patient", t, 0);
            assert_eq!(g, plan.decide_table_outage(SourceId(1), "patient", t, 0));
            gone += g as usize;
            let s = plan.decide_stale(SourceId(1), "patient", t, 0);
            assert_eq!(s, plan.decide_stale(SourceId(1), "patient", t, 0));
            if let Some(lag) = s {
                assert!((1..=3).contains(&lag));
                stale += 1;
            }
        }
        let cf = corrupted as f64 / n as f64;
        let gf = gone as f64 / n as f64;
        let sf = stale as f64 / n as f64;
        assert!((0.22..0.28).contains(&cf), "corrupt rate {cf}");
        assert!((0.08..0.12).contains(&gf), "table outage rate {gf}");
        assert!((0.46..0.54).contains(&sf), "stale rate {sf}");
        // Distinct tables draw from independent streams.
        let a: Vec<_> = (0..64)
            .map(|t| plan.decide_corruption(SourceId(1), "patient", t, 0))
            .collect();
        let b: Vec<_> = (0..64)
            .map(|t| plan.decide_corruption(SourceId(1), "treatment", t, 0))
            .collect();
        assert_ne!(a, b);
        // The mediator is never a corruption site.
        for t in 0..200 {
            assert_eq!(plan.decide_corruption(SourceId::MEDIATOR, "x", t, 0), None);
            assert!(!plan.decide_table_outage(SourceId::MEDIATOR, "x", t, 0));
        }
        // Wrong-answer faults leave the fail-stop stream untouched.
        let clean = FaultPlan::new(
            &FaultConfig {
                seed: 21,
                ..FaultConfig::default()
            },
            &cat,
        )
        .unwrap();
        for t in 0..200 {
            assert_eq!(
                plan.decide(SourceId(1), t, 0),
                clean.decide(SourceId(1), t, 0)
            );
        }
    }

    #[test]
    fn run_task_masks_detected_corruption_by_retry() {
        use aig_relstore::{Value, ValueType};
        let cfg = FaultConfig {
            seed: 2,
            corrupt_rate: 1.0,
            ..FaultConfig::default()
        };
        let cat = catalog();
        let plan = FaultPlan::new(&cfg, &cat).unwrap();
        let retry = RetryPolicy {
            max_attempts: 3,
            backoff_base_secs: 0.0,
            backoff_cap_secs: 0.0,
            jitter: 0.0,
            timeout_secs: f64::INFINITY,
        };
        let env = FaultEnv {
            plan: Some(&plan),
            retry: &retry,
            deadline: None,
        };
        let profile = RelProfile {
            table: "patient".to_string(),
            col_types: [
                ("__parent".to_string(), ValueType::Int),
                ("__ord".to_string(), ValueType::Int),
                ("ssn".to_string(), ValueType::Str),
            ]
            .into_iter()
            .collect(),
            key_cols: vec!["ssn".to_string()],
        };
        let ctx = TaskFaultCtx {
            task_id: 0,
            label: "q",
            source: SourceId(1),
            source_name: "DB1",
            table: Some("patient"),
            failed_over_from: None,
            profile: Some(&profile),
            check_integrity: true,
        };
        let fresh = || {
            Ok(Some(
                Relation::new(
                    vec!["__parent".into(), "__ord".into(), "ssn".into()],
                    vec![
                        vec![Value::int(0), Value::int(0), Value::str("a")],
                        vec![Value::int(0), Value::int(1), Value::str("b")],
                        vec![Value::int(0), Value::int(2), Value::str("c")],
                    ],
                )
                .unwrap(),
            ))
        };
        let mut events = Vec::new();
        let mut ledger = Vec::new();
        let result = env.run_task(&ctx, &mut events, &mut ledger, fresh);
        // corrupt_rate = 1.0 with max_attempts = 3: every attempt corrupts,
        // every attempt is detected, the final one surfaces.
        let err = result.unwrap_err();
        assert!(
            matches!(err, MediatorError::IntegrityViolation { .. }),
            "{err}"
        );
        assert_eq!(ledger.len(), 3);
        assert_eq!(
            ledger
                .iter()
                .filter(|e| e.outcome == IntegrityOutcome::MaskedByRetry)
                .count(),
            2
        );
        assert_eq!(
            ledger
                .iter()
                .filter(|e| e.outcome == IntegrityOutcome::DetectedByGuard)
                .count(),
            1
        );
        for e in &ledger {
            assert!(matches!(e.kind, WrongAnswerKind::CorruptRow(_)));
            assert!(!e.constraint.is_empty());
        }

        // With the guard off the same corruption flows through undetected.
        let ctx_off = TaskFaultCtx {
            check_integrity: false,
            ..ctx
        };
        let mut events = Vec::new();
        let mut ledger = Vec::new();
        let out = env
            .run_task(&ctx_off, &mut events, &mut ledger, fresh)
            .unwrap()
            .unwrap();
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger[0].outcome, IntegrityOutcome::Undetected);
        let clean = fresh().unwrap().unwrap();
        assert_ne!(out, clean, "corruption must actually change the relation");
    }

    #[test]
    fn run_task_truncates_stale_replica_after_failover() {
        use aig_relstore::Value;
        let cfg = FaultConfig {
            seed: 4,
            stale_replica_rate: 1.0,
            stale_replica_rows: 2,
            ..FaultConfig::default()
        };
        let cat = catalog();
        let plan = FaultPlan::new(&cfg, &cat).unwrap();
        let retry = RetryPolicy {
            max_attempts: 1,
            backoff_base_secs: 0.0,
            backoff_cap_secs: 0.0,
            jitter: 0.0,
            timeout_secs: f64::INFINITY,
        };
        let env = FaultEnv {
            plan: Some(&plan),
            retry: &retry,
            deadline: None,
        };
        let fresh = || Ok(Some(Relation::single_column("id", (0..5).map(Value::int))));
        // No failover: staleness never fires.
        let ctx = TaskFaultCtx {
            task_id: 0,
            label: "q",
            source: SourceId(1),
            source_name: "DB1",
            table: Some("patient"),
            failed_over_from: None,
            profile: None,
            check_integrity: false,
        };
        let mut events = Vec::new();
        let mut ledger = Vec::new();
        let out = env
            .run_task(&ctx, &mut events, &mut ledger, fresh)
            .unwrap()
            .unwrap();
        assert_eq!(out.len(), 5);
        assert!(ledger.is_empty());
        // After failover the replica lags by a seeded suffix.
        let ctx_failed_over = TaskFaultCtx {
            failed_over_from: Some("DB2"),
            ..ctx
        };
        let mut events = Vec::new();
        let mut ledger = Vec::new();
        let out = env
            .run_task(&ctx_failed_over, &mut events, &mut ledger, fresh)
            .unwrap()
            .unwrap();
        assert!(out.len() < 5, "stale replica must drop trailing rows");
        assert_eq!(out.cell(0, 0), &Value::int(0), "prefix preserved");
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger[0].kind.name(), "stale-replica");
        assert_eq!(ledger[0].outcome, IntegrityOutcome::Undetected);
    }

    #[test]
    fn no_backoff_sleep_after_final_failed_attempt() {
        // Every attempt faults; the backoff schedule is deliberately huge so
        // that any sleep *after* the last attempt would blow the elapsed-time
        // bound. With max_attempts = 1 there is exactly one (final) attempt,
        // so no backoff may be slept at all.
        let cfg = FaultConfig {
            seed: 11,
            transient_rate: 1.0,
            ..FaultConfig::default()
        };
        let cat = catalog();
        let plan = FaultPlan::new(&cfg, &cat).unwrap();
        let retry = RetryPolicy {
            max_attempts: 1,
            backoff_base_secs: 30.0,
            backoff_cap_secs: 30.0,
            jitter: 0.0,
            timeout_secs: f64::INFINITY,
        };
        let env = FaultEnv {
            plan: Some(&plan),
            retry: &retry,
            deadline: None,
        };
        let ctx = TaskFaultCtx {
            task_id: 0,
            label: "q",
            source: SourceId(1),
            source_name: "DB1",
            table: None,
            failed_over_from: None,
            profile: None,
            check_integrity: false,
        };
        let mut events = Vec::new();
        let mut ledger = Vec::new();
        let start = Instant::now();
        let err = env
            .run_task(&ctx, &mut events, &mut ledger, || {
                Ok(Some(Relation::empty(vec!["a".into()])))
            })
            .unwrap_err();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "the final failed attempt must not sleep its 30s backoff"
        );
        assert!(matches!(err, MediatorError::SourceFault { .. }), "{err}");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].outcome, FaultOutcome::Surfaced);
        assert_eq!(
            events[0].backoff_secs, 0.0,
            "surfaced events carry no backoff"
        );

        // With retries the non-final attempts do record backoff, but the
        // surfaced final attempt still records (and sleeps) none.
        let retry = RetryPolicy {
            max_attempts: 3,
            backoff_base_secs: 0.0005,
            backoff_cap_secs: 0.01,
            jitter: 0.0,
            timeout_secs: f64::INFINITY,
        };
        let env = FaultEnv {
            plan: Some(&plan),
            retry: &retry,
            deadline: None,
        };
        let mut events = Vec::new();
        let mut ledger = Vec::new();
        env.run_task(&ctx, &mut events, &mut ledger, || {
            Ok(Some(Relation::empty(vec!["a".into()])))
        })
        .unwrap_err();
        assert_eq!(events.len(), 3);
        for e in &events[..2] {
            assert_eq!(e.outcome, FaultOutcome::Retried);
            assert!(e.backoff_secs > 0.0, "retried attempts back off");
        }
        assert_eq!(events[2].outcome, FaultOutcome::Surfaced);
        assert_eq!(events[2].backoff_secs, 0.0);
    }

    #[test]
    fn spike_equal_to_timeout_counts_as_exactly_one_timeout() {
        // Find a task whose attempt 0 draws a latency spike, then set the
        // per-attempt timeout to exactly that spike. The boundary is strict:
        // only `spike < timeout` absorbs, so equality must fail the attempt
        // as one timeout after sleeping only the timeout.
        let cfg = FaultConfig {
            seed: 13,
            latency_rate: 1.0,
            latency_secs: 0.002,
            ..FaultConfig::default()
        };
        let cat = catalog();
        let plan = FaultPlan::new(&cfg, &cat).unwrap();
        let spike = (0..100)
            .find_map(|t| match plan.decide(SourceId(1), t, 0) {
                Some(InjectedFault::Latency(d)) => Some((t, d.as_secs_f64())),
                _ => None,
            })
            .expect("latency_rate 1.0 draws a spike");
        let (task_id, spike_secs) = spike;
        let ctx = TaskFaultCtx {
            task_id,
            label: "q",
            source: SourceId(1),
            source_name: "DB1",
            table: None,
            failed_over_from: None,
            profile: None,
            check_integrity: false,
        };
        let run = || Ok(Some(Relation::empty(vec!["a".into()])));

        // timeout == spike: the attempt times out, exactly one event, stall
        // capped at the timeout (not the spike re-slept or double-counted).
        let retry = RetryPolicy {
            max_attempts: 1,
            backoff_base_secs: 0.0,
            backoff_cap_secs: 0.0,
            jitter: 0.0,
            timeout_secs: spike_secs,
        };
        let env = FaultEnv {
            plan: Some(&plan),
            retry: &retry,
            deadline: None,
        };
        let mut events = Vec::new();
        let mut ledger = Vec::new();
        let err = env
            .run_task(&ctx, &mut events, &mut ledger, run)
            .unwrap_err();
        assert!(
            matches!(
                &err,
                MediatorError::SourceFault { kind, attempts: 1, .. } if kind == "latency"
            ),
            "{err}"
        );
        assert_eq!(events.len(), 1, "exactly one timeout event");
        assert_eq!(events[0].kind, FaultKind::Latency);
        assert_eq!(events[0].outcome, FaultOutcome::Surfaced);
        assert_eq!(events[0].stall_secs, spike_secs, "stall capped at timeout");

        // Any strictly larger timeout absorbs the same spike instead.
        let absorbing = RetryPolicy {
            timeout_secs: spike_secs + 1e-9,
            ..retry
        };
        let env = FaultEnv {
            plan: Some(&plan),
            retry: &absorbing,
            deadline: None,
        };
        let mut events = Vec::new();
        let mut ledger = Vec::new();
        env.run_task(&ctx, &mut events, &mut ledger, run).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].outcome, FaultOutcome::Absorbed);
        assert_eq!(
            events[0].stall_secs, spike_secs,
            "absorbed stall is the spike"
        );
    }

    #[test]
    fn jitter_band_is_honored_and_deterministic_per_seed() {
        let policy = RetryPolicy {
            max_attempts: 8,
            backoff_base_secs: 0.004,
            backoff_cap_secs: 0.064,
            jitter: 0.25,
            timeout_secs: f64::INFINITY,
        };
        for a in 0..8 {
            let nominal = (0.004 * (1u64 << a) as f64).min(0.064);
            let x = policy.backoff_secs(17, 2, a);
            assert!(
                x >= nominal * 0.75 && x <= nominal * 1.25,
                "{x} outside [0.75, 1.25] x {nominal}"
            );
            assert_eq!(x, policy.backoff_secs(17, 2, a), "same seed, same sleep");
        }
        // Different seeds draw different schedules (the jitter is seeded,
        // not a fixed multiplier).
        let a: Vec<f64> = (0..8).map(|i| policy.backoff_secs(17, 2, i)).collect();
        let b: Vec<f64> = (0..8).map(|i| policy.backoff_secs(18, 2, i)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn jitter_outside_unit_interval_is_clamped() {
        let base = RetryPolicy {
            max_attempts: 4,
            backoff_base_secs: 0.002,
            backoff_cap_secs: 0.016,
            jitter: 0.0,
            timeout_secs: f64::INFINITY,
        };
        let with = |jitter| RetryPolicy {
            jitter,
            ..base.clone()
        };
        for a in 0..4 {
            // Above 1 behaves exactly as 1 (a wider band would permit
            // negative sleeps).
            assert_eq!(
                with(1.5).backoff_secs(3, 1, a),
                with(1.0).backoff_secs(3, 1, a)
            );
            // Below 0 behaves exactly as 0 (no jitter).
            assert_eq!(
                with(-0.3).backoff_secs(3, 1, a),
                with(0.0).backoff_secs(3, 1, a)
            );
            // NaN disables jitter rather than poisoning the range.
            assert_eq!(
                with(f64::NAN).backoff_secs(3, 1, a),
                with(0.0).backoff_secs(3, 1, a)
            );
            // Full jitter still never goes negative.
            let x = with(1.0).backoff_secs(3, 1, a);
            let nominal = (0.002 * (1u64 << a) as f64).min(0.016);
            assert!((0.0..=2.0 * nominal).contains(&x), "{x} vs {nominal}");
        }
    }

    #[test]
    fn deadline_gates_attempts_and_clamps_sleeps() {
        // An expired deadline surfaces before any attempt runs.
        let cfg = FaultConfig {
            seed: 11,
            transient_rate: 1.0,
            ..FaultConfig::default()
        };
        let cat = catalog();
        let plan = FaultPlan::new(&cfg, &cat).unwrap();
        let deadline = Deadline::starting_now(0.0);
        let retry = RetryPolicy {
            max_attempts: 3,
            backoff_base_secs: 30.0,
            backoff_cap_secs: 30.0,
            jitter: 0.0,
            timeout_secs: f64::INFINITY,
        };
        let env = FaultEnv {
            plan: Some(&plan),
            retry: &retry,
            deadline: Some(&deadline),
        };
        let ctx = TaskFaultCtx {
            task_id: 0,
            label: "q",
            source: SourceId(1),
            source_name: "DB1",
            table: None,
            failed_over_from: None,
            profile: None,
            check_integrity: false,
        };
        let mut events = Vec::new();
        let mut ledger = Vec::new();
        let mut calls = 0;
        let err = env
            .run_task(&ctx, &mut events, &mut ledger, || {
                calls += 1;
                Ok(Some(Relation::empty(vec!["a".into()])))
            })
            .unwrap_err();
        assert_eq!(calls, 0);
        assert!(events.is_empty(), "no attempt started, nothing injected");
        assert!(
            matches!(err, MediatorError::DeadlineExceeded { .. }),
            "{err}"
        );

        // A near-exhausted deadline clamps the 30s backoff: the first
        // faulted attempt retries, the sleep is cut to the remaining budget,
        // and the second attempt's gate surfaces the deadline — all fast.
        let deadline = Deadline::starting_now(0.05);
        let env = FaultEnv {
            plan: Some(&plan),
            retry: &retry,
            deadline: Some(&deadline),
        };
        let mut events = Vec::new();
        let mut ledger = Vec::new();
        let start = Instant::now();
        let err = env
            .run_task(&ctx, &mut events, &mut ledger, || {
                Ok(Some(Relation::empty(vec!["a".into()])))
            })
            .unwrap_err();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "backoff sleeps must clamp to the remaining budget"
        );
        assert!(
            matches!(err, MediatorError::DeadlineExceeded { .. }),
            "{err}"
        );
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].outcome, FaultOutcome::Retried);
        assert_eq!(
            events[0].backoff_secs, 30.0,
            "the event records the nominal (seeded) backoff, not the clamp"
        );
    }
}
