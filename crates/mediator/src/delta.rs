//! Incremental re-evaluation on source deltas: task-level dependency
//! tracking and subgraph re-execution.
//!
//! The mediator's evaluation is a task graph whose leaves are source
//! queries (paper §5.1). When a source table changes by a small delta, a
//! full re-run repeats every task even though most of them read tables the
//! delta never touched. This module makes re-evaluation proportional to
//! the delta's *reach* instead:
//!
//! 1. **Read-sets** ([`ReadSets::analyze`]): a static scan of the prepared
//!    plan's query ASTs records, per task, which `(source, table)` pairs —
//!    and which columns of each — the task's queries consume. Computed
//!    once at prepare time and cached on the [`crate::plan::PreparedPlan`].
//! 2. **Seeding** ([`ReadSets::seeds`]): after a
//!    [`aig_relstore::SourceDelta`] is applied, the delta's touched tables
//!    are intersected with the read-sets; tasks that read a dirty table
//!    are the re-run seeds.
//! 3. **Closure** ([`rerun_mask`]): the seeds' downstream closure over the
//!    task graph (every task that transitively consumes a seed's output)
//!    is the subgraph that must re-run; everything else reuses its cached
//!    output relation unchanged.
//! 4. **Splice** ([`execute_incremental`]): the re-run subgraph executes
//!    in topological order against the post-delta catalog — re-shipping
//!    its outputs through the same batch/ship seam as a cold run — and the
//!    resulting relations are spliced into the cached store next to the
//!    reused ones.
//!
//! The byte-identity invariant carries over from the executors: a spliced
//! store is relation-for-relation equal to a cold run's store, so the
//! retagged document ([`crate::tagging::retag_document`]) and every
//! downstream artifact are byte-identical to a cold full run. Fault
//! injection replays deterministically per `(task, attempt)`, so transient
//! and latency faults re-run identically; mid-run outage plans
//! (`dies_after`) depend on global per-source completion counts and take
//! the full-run path instead (see [`crate::service::Mediator`]).

use crate::error::MediatorError;
use crate::exec::{
    input_rows, resolve_outages, ExecOptions, ExecResult, Executor, Measured, RelStore,
};
use crate::faults::{FaultEnv, IntegrityLog, ResilienceLog, TaskFaultCtx};
use crate::graph::{RelKey, TaskGraph, TaskKind, VectorQuery};
use crate::integrity;
use aig_core::spec::{Aig, ElemIdx, Prod};
use aig_relstore::{Catalog, SourceId, Value};
use aig_sql::{FromItem, Pred, Scalar};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::time::Instant;

/// A `(source name, table name)` pair — the granularity deltas are tracked
/// at.
pub type TableRef = (String, String);

/// Per-task read-sets of a prepared plan: which stored tables (and which
/// columns of each) every task's queries consume. Tasks without source
/// queries (assembles, guards, aggregations) have empty read-sets — they
/// are reached through the downstream closure instead.
#[derive(Debug, Clone, Default)]
pub struct ReadSets {
    /// Per task: the `(source, table)` pairs read by its queries.
    tables: Vec<BTreeSet<TableRef>>,
    /// Per task: the columns referenced per table (alias-resolved from the
    /// query AST). Observability and ship-cut cross-checks; matching is
    /// table-level because deltas carry whole rows.
    columns: Vec<BTreeMap<TableRef, BTreeSet<String>>>,
}

impl ReadSets {
    /// Scans the task graph's query ASTs and records each task's reads.
    pub fn analyze(graph: &TaskGraph) -> ReadSets {
        let mut tables = vec![BTreeSet::new(); graph.tasks.len()];
        let mut columns = vec![BTreeMap::new(); graph.tasks.len()];
        for (id, task) in graph.tasks.iter().enumerate() {
            let vq: Option<&VectorQuery> = match &task.kind {
                TaskKind::Gen { query, .. } => query.as_ref(),
                TaskKind::InhSetQuery { query, .. } => Some(query),
                TaskKind::Cond { query, .. } => Some(query),
                _ => None,
            };
            if let Some(vq) = vq {
                record_query(vq, &mut tables[id], &mut columns[id]);
            }
        }
        ReadSets { tables, columns }
    }

    /// The `(source, table)` pairs task `id` reads.
    pub fn tables(&self, id: usize) -> &BTreeSet<TableRef> {
        &self.tables[id]
    }

    /// The columns task `id` reads, per table.
    pub fn columns(&self, id: usize) -> &BTreeMap<TableRef, BTreeSet<String>> {
        &self.columns[id]
    }

    /// Union of all tasks' read tables (what the plan depends on at all).
    pub fn tracked(&self) -> BTreeSet<TableRef> {
        self.tables.iter().flatten().cloned().collect()
    }

    /// Tasks whose read-sets intersect the dirty tables — the re-run
    /// seeds of an incremental evaluation.
    pub fn seeds(&self, dirty: &BTreeSet<TableRef>) -> Vec<usize> {
        self.tables
            .iter()
            .enumerate()
            .filter(|(_, reads)| reads.iter().any(|t| dirty.contains(t)))
            .map(|(id, _)| id)
            .collect()
    }
}

/// Records one vectorized query's table and column reads. Columns resolve
/// through the FROM aliases; references to relation-parameter aliases
/// (shipped intermediates) are dependency-edge territory, not source
/// reads, and are skipped.
fn record_query(
    vq: &VectorQuery,
    tables: &mut BTreeSet<TableRef>,
    columns: &mut BTreeMap<TableRef, BTreeSet<String>>,
) {
    let mut by_alias: HashMap<&str, TableRef> = HashMap::new();
    for item in &vq.query.from {
        if let FromItem::Table {
            source,
            table,
            alias,
        } = item
        {
            let key = (source.clone(), table.clone());
            tables.insert(key.clone());
            columns.entry(key.clone()).or_default();
            by_alias.insert(alias.as_str(), key);
        }
    }
    let mut record_col = |qualifier: &str, column: &str| {
        if let Some(key) = by_alias.get(qualifier) {
            columns
                .entry(key.clone())
                .or_default()
                .insert(column.to_string());
        }
    };
    for item in &vq.query.select {
        if let Scalar::Col(c) = &item.expr {
            record_col(&c.qualifier, &c.column);
        }
    }
    for pred in &vq.query.preds {
        match pred {
            Pred::Cmp { lhs, rhs, .. } => {
                for side in [lhs, rhs] {
                    if let Scalar::Col(c) = side {
                        record_col(&c.qualifier, &c.column);
                    }
                }
            }
            Pred::In { col, .. } => record_col(&col.qualifier, &col.column),
        }
    }
}

/// The downstream closure of `seeds` over the task graph: `mask[id]` is
/// true for every seed and every task that transitively consumes a
/// masked task's output — the subgraph an incremental evaluation re-runs.
pub fn rerun_mask(graph: &TaskGraph, seeds: &[usize]) -> Vec<bool> {
    let succ = graph.successors();
    let mut mask = vec![false; graph.tasks.len()];
    let mut stack: Vec<usize> = seeds.to_vec();
    while let Some(id) = stack.pop() {
        if mask[id] {
            continue;
        }
        mask[id] = true;
        for &next in &succ[id] {
            if !mask[next] {
                stack.push(next);
            }
        }
    }
    mask
}

/// Materialized elements whose instance tables the re-run subgraph
/// produces — the taint set of the document retag: everything below these
/// elements rebuilds from the spliced store, everything else copies
/// verbatim from the cached tree.
pub(crate) fn tainted_elems(graph: &TaskGraph, rerun: &[bool]) -> HashSet<ElemIdx> {
    graph
        .materialized
        .iter()
        .copied()
        .filter(|&elem| {
            graph
                .producer
                .get(&RelKey::Instances(elem))
                .is_some_and(|&id| rerun[id])
        })
        .collect()
}

/// Element tags reachable from the tainted elements through the unfolded
/// productions (internal computation states are never tagged and are not
/// descended into) — the scope of the incremental constraint re-check: a
/// constraint none of whose tags appear here touches only verbatim-copied
/// subtrees with unchanged values, so its previously-checked result holds.
pub(crate) fn scope_tags(aig: &Aig, tainted: &HashSet<ElemIdx>) -> HashSet<String> {
    let mut seen: HashSet<ElemIdx> = HashSet::new();
    let mut stack: Vec<ElemIdx> = tainted.iter().copied().collect();
    while let Some(elem) = stack.pop() {
        if !seen.insert(elem) {
            continue;
        }
        match &aig.elem_info(elem).prod {
            Prod::Items(items) => {
                for item in items {
                    if !aig.elem_info(item.elem).internal {
                        stack.push(item.elem);
                    }
                }
            }
            Prod::Choice { branches, .. } => {
                for branch in branches {
                    stack.push(branch.elem);
                }
            }
            _ => {}
        }
    }
    seen.iter()
        .map(|&e| aig.elem_info(e).tag().to_string())
        .collect()
}

/// What [`execute_incremental`] produced: the spliced execution result
/// plus the splice accounting for the report's `incremental` section.
pub(crate) struct Spliced {
    pub exec: ExecResult,
    /// Rows of re-run task outputs spliced into the cached store.
    pub rows_spliced: u64,
}

/// Re-runs only the masked subgraph against the post-delta catalog and
/// splices its outputs into a copy of the cached store; unmasked tasks
/// reuse their cached output relations and measurements unchanged.
///
/// The walk is sequential-topological — valid for every policy cell
/// because stores and documents are byte-identical across the sequential
/// and parallel executors (see `parallel_equiv`). Per-`(task, attempt)`
/// fault injection (transient, latency, corruption) replays
/// deterministically; the caller must route mid-run outage plans
/// (`dies_after`, which depend on global completion counts) to the
/// full-run path instead.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_incremental(
    aig: &Aig,
    catalog: &Catalog,
    graph: &TaskGraph,
    args: &[(&str, Value)],
    opts: &ExecOptions,
    prev_store: &RelStore,
    prev_measured: &[Measured],
    rerun: &[bool],
) -> Result<Spliced, MediatorError> {
    debug_assert!(
        !opts
            .faults
            .as_ref()
            .is_some_and(|p| p.has_mid_run_outages()),
        "mid-run outage plans must take the full-run path"
    );
    let mut store = RelStore::default();
    let mut measured = vec![Measured::default(); graph.tasks.len()];
    let mut resilience = ResilienceLog::default();
    let mut integrity_log = IntegrityLog::default();
    let mut rows_spliced: u64 = 0;
    let profiling = opts.check_integrity()
        || opts
            .faults
            .as_ref()
            .is_some_and(|p| p.has_wrong_answer_faults());
    let ledger = crate::batch::ShipLedger::default();
    let mut effective: Vec<SourceId> = graph.tasks.iter().map(|t| t.source).collect();
    let active = match &opts.faults {
        Some(plan) => resolve_outages(catalog, graph, plan, &mut effective)?,
        None => None,
    };
    let env = FaultEnv {
        plan: opts.faults.as_ref(),
        retry: opts.retry(),
        deadline: opts.deadline.as_ref(),
    };
    let epoch = Instant::now();
    for &id in &graph.topo {
        let task = &graph.tasks[id];
        if !rerun[id] {
            // Reused task: its inputs are unchanged by construction, so
            // its cached output relation and measurements carry over.
            if let Some(key) = task.output.clone() {
                store.insert(key.clone(), prev_store.get(&key)?.clone());
            }
            measured[id] = prev_measured[id];
            continue;
        }
        let catalog = active.as_ref().unwrap_or(catalog);
        let in_rows = input_rows(task, &store);
        let start = Instant::now();
        let start_secs = (start - epoch).as_secs_f64();
        let failed_over_from =
            (effective[id] != task.source).then(|| catalog.source(task.source).name());
        let profile = if profiling {
            integrity::profile_task(task, catalog)
        } else {
            None
        };
        let output = {
            let exec = Executor {
                aig,
                catalog,
                graph,
                store: &store,
                opts,
            };
            if let Some(secs) = opts.pace.as_ref().and_then(|p| p.get(id)) {
                crate::faults::sleep_secs(*secs);
            }
            let ctx = TaskFaultCtx {
                task_id: id,
                label: &task.label,
                source: effective[id],
                source_name: catalog.source(effective[id]).name(),
                table: integrity::task_table(task),
                failed_over_from,
                profile: profile.as_ref(),
                check_integrity: opts.check_integrity(),
            };
            env.run_task(
                &ctx,
                &mut resilience.events,
                &mut integrity_log.events,
                || {
                    let _slot = opts
                        .gate
                        .as_ref()
                        .filter(|_| !effective[id].is_mediator())
                        .map(|gate| gate.acquire(effective[id], opts.deadline.as_ref()));
                    exec.run_task(task, args)
                },
            )?
        };
        let secs = start.elapsed().as_secs_f64();
        let (rows, bytes, wire) = output
            .as_ref()
            .map(|r| (r.len() as f64, r.byte_size() as f64, r.wire_bytes() as f64))
            .unwrap_or((0.0, 0.0, 0.0));
        // Re-run outputs re-ship through the same chunked seam a cold run
        // uses; reused outputs never touch the wire again, so the batch
        // ledger reflects only the re-shipped sub-relations.
        let shipped = output
            .as_ref()
            .map(|r| crate::batch::ship_output(opts, &ledger, id, r, |_, _| {}));
        let (ship_bytes, batches) = shipped
            .map(|s| (s.ship_bytes, s.batches))
            .unwrap_or((0.0, 0));
        if let (Some(key), Some(rel)) = (task.output.clone(), output) {
            rows_spliced += rel.len() as u64;
            store.insert(key, rel);
        }
        measured[id] = Measured {
            secs,
            out_rows: rows,
            out_bytes: bytes,
            wire_bytes: wire,
            ship_bytes,
            batches,
            in_rows,
            wait_secs: 0.0,
            start_secs,
        };
    }
    Ok(Spliced {
        exec: ExecResult {
            store,
            measured,
            resilience,
            integrity: integrity_log,
            sched: crate::exec::SchedLog::default(),
            batch: crate::batch::BatchLog::from_ledger(opts, &ledger),
        },
        rows_spliced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build_graph, GraphOptions};
    use crate::unfold::{unfold, CutOff};
    use aig_core::paper::{mini_hospital_catalog, sigma0};
    use aig_core::spec::Aig;
    use aig_core::{compile_constraints, decompose_queries};

    fn unfolded_fixture() -> (Aig, aig_relstore::Catalog, TaskGraph) {
        let aig = sigma0().unwrap();
        let catalog = mini_hospital_catalog().unwrap();
        let compiled = compile_constraints(&aig).unwrap();
        let (specialized, _) = decompose_queries(&compiled).unwrap();
        let unfolded = unfold(&specialized, 3, CutOff::Frontier).unwrap();
        let graph = build_graph(&unfolded.aig, &catalog, &GraphOptions::default()).unwrap();
        (unfolded.aig, catalog, graph)
    }

    #[test]
    fn read_sets_cover_every_source_query_and_only_those() {
        let (_aig, _catalog, graph) = unfolded_fixture();
        let read_sets = ReadSets::analyze(&graph);
        for (id, task) in graph.tasks.iter().enumerate() {
            let has_query = matches!(
                &task.kind,
                TaskKind::Gen { query: Some(_), .. }
                    | TaskKind::InhSetQuery { .. }
                    | TaskKind::Cond { .. }
            );
            let queries_tables = match &task.kind {
                TaskKind::Gen { query: Some(q), .. } => !q.query.sources().is_empty(),
                TaskKind::InhSetQuery { query, .. } => !query.query.sources().is_empty(),
                TaskKind::Cond { query, .. } => !query.query.sources().is_empty(),
                _ => false,
            };
            assert_eq!(
                !read_sets.tables(id).is_empty(),
                queries_tables,
                "task {id} ({}) read-set mismatch",
                task.label
            );
            if !has_query {
                assert!(read_sets.tables(id).is_empty());
            }
        }
        // The mini-hospital plan reads the visit table somewhere.
        assert!(read_sets
            .tracked()
            .iter()
            .any(|(_, table)| table == "visitInfo"));
    }

    #[test]
    fn column_read_sets_resolve_aliases_to_tables() {
        let (_aig, _catalog, graph) = unfolded_fixture();
        let read_sets = ReadSets::analyze(&graph);
        let mut saw_columns = false;
        for id in 0..graph.tasks.len() {
            for (table, cols) in read_sets.columns(id) {
                assert!(
                    read_sets.tables(id).contains(table),
                    "column entry for untracked table {table:?}"
                );
                saw_columns |= !cols.is_empty();
            }
        }
        assert!(saw_columns, "no column reads recorded at all");
    }

    #[test]
    fn rerun_mask_is_the_downstream_closure_of_the_seeds() {
        let (_aig, _catalog, graph) = unfolded_fixture();
        let read_sets = ReadSets::analyze(&graph);
        let dirty: BTreeSet<TableRef> = [("DB1".to_string(), "visitInfo".to_string())].into();
        let seeds = read_sets.seeds(&dirty);
        assert!(!seeds.is_empty(), "no task reads DB1.visitInfo");
        let mask = rerun_mask(&graph, &seeds);
        // Closure property: a task is masked iff it is a seed or depends
        // on a masked task.
        for (id, task) in graph.tasks.iter().enumerate() {
            let dep_masked = task.deps.iter().any(|(dep, _)| mask[*dep]);
            if dep_masked {
                assert!(mask[id], "task {id} consumes a masked task but is unmasked");
            }
            if mask[id] && !seeds.contains(&id) {
                assert!(dep_masked, "masked task {id} has no masked dependency");
            }
        }
        // A single-table delta must not re-run the whole plan.
        let rerun = mask.iter().filter(|&&m| m).count();
        assert!(
            rerun < graph.tasks.len(),
            "single-table delta re-runs everything ({rerun}/{})",
            graph.tasks.len()
        );
        assert!(rerun >= seeds.len());
    }

    #[test]
    fn untouched_tables_seed_nothing() {
        let (_aig, _catalog, graph) = unfolded_fixture();
        let read_sets = ReadSets::analyze(&graph);
        let dirty: BTreeSet<TableRef> = [("DB9".to_string(), "nonexistent".to_string())].into();
        assert!(read_sets.seeds(&dirty).is_empty());
    }

    #[test]
    fn tainted_elems_track_rerun_instance_producers() {
        let (aig, _catalog, graph) = unfolded_fixture();
        let read_sets = ReadSets::analyze(&graph);
        let dirty: BTreeSet<TableRef> = [("DB1".to_string(), "visitInfo".to_string())].into();
        let mask = rerun_mask(&graph, &read_sets.seeds(&dirty));
        let tainted = tainted_elems(&graph, &mask);
        assert!(!tainted.is_empty());
        // The root is produced by the argument-binding task, which reads
        // no source table and sits upstream of everything.
        assert!(!tainted.contains(&aig.root));
        let scope = scope_tags(&aig, &tainted);
        assert!(!scope.is_empty());
        // Scope is closed downward: every tainted element's own tag is in.
        for &e in &tainted {
            assert!(scope.contains(aig.elem_info(e).tag()));
        }
    }
}
