//! The chunked-shipment seam: bounded columnar batch streams.
//!
//! The materializing executors ship each task's whole output relation in
//! one piece, so a shipment is resident in full while it crosses the wire.
//! Under [`crate::plan::ExecPolicy::batching`] the ship seam instead yields
//! fixed-size batches ([`BatchStream`]): the mediator puts batch `k` on the
//! wire while the consumer digests batch `k − 1`, so at most two batches of
//! a task are resident at once (the double-buffer window) and peak resident
//! rows are bounded by `O(batch_rows × active tasks)` instead of the
//! largest shipped relation. Stores and documents are byte-identical either
//! way — batching changes *when rows cross the seam*, never what arrives.
//!
//! [`ShipLedger`] does the accounting: resident rows under the window,
//! their global peak, and the total batch count, shared by every task of an
//! execution (including the parallel executor's per-source workers).

use crate::exec::ExecOptions;
use aig_relstore::Relation;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A bounded stream of fixed-size columnar batches — the source/executor
/// shipment seam. Every batch shares the schema of the stream's relation;
/// concatenating the batches in order reproduces it exactly (see the
/// `batch_props` property suite in `aig-relstore`).
pub trait BatchStream {
    /// The next batch, `None` once the stream is drained. Batches are
    /// non-empty and hold at most `batch_rows` rows.
    fn next_batch(&mut self) -> Option<Relation>;
    /// Batches left to yield (exact: relations know their length).
    fn batches_left(&self) -> usize;
}

/// [`BatchStream`] over a materialized relation — the only producer today;
/// the trait is the seam a cursor-backed source implementation would plug
/// into. Slices share the relation's column buffers (`Arc` clones) when the
/// whole relation fits one batch, so the materializing configuration pays
/// nothing for going through the seam.
#[derive(Debug)]
pub struct RelationStream {
    rel: Relation,
    batch_rows: usize,
    next: usize,
}

impl RelationStream {
    pub fn new(rel: Relation, batch_rows: usize) -> RelationStream {
        RelationStream {
            rel,
            batch_rows: batch_rows.max(1),
            next: 0,
        }
    }
}

impl BatchStream for RelationStream {
    fn next_batch(&mut self) -> Option<Relation> {
        if self.next >= self.rel.len() {
            return None;
        }
        let rows = self.batch_rows.min(self.rel.len() - self.next);
        let batch = self.rel.slice(self.next, rows);
        self.next += rows;
        Some(batch)
    }

    fn batches_left(&self) -> usize {
        (self.rel.len() - self.next).div_ceil(self.batch_rows)
    }
}

/// Shared shipment accounting for one execution. Thread-safe so the
/// parallel executor's workers update it lock-free; the double-buffer
/// window is acquired/released per batch by [`ship_output`].
#[derive(Debug, Default)]
pub struct ShipLedger {
    resident_rows: AtomicUsize,
    peak_resident_rows: AtomicUsize,
    total_batches: AtomicU64,
}

impl ShipLedger {
    fn acquire(&self, rows: usize) {
        let now = self.resident_rows.fetch_add(rows, Ordering::SeqCst) + rows;
        self.peak_resident_rows.fetch_max(now, Ordering::SeqCst);
        self.total_batches.fetch_add(1, Ordering::Relaxed);
    }

    fn release(&self, rows: usize) {
        self.resident_rows.fetch_sub(rows, Ordering::SeqCst);
    }

    /// Highest number of shipment rows resident at any instant.
    pub fn peak_resident_rows(&self) -> usize {
        self.peak_resident_rows.load(Ordering::SeqCst)
    }

    /// Batches shipped across all tasks.
    pub fn total_batches(&self) -> u64 {
        self.total_batches.load(Ordering::Relaxed)
    }
}

/// What the shipment seam did during one execution; carried in
/// [`crate::exec::ExecResult`] and summarized into the run report's
/// `batching` section.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchLog {
    /// Whether chunked shipment was on.
    pub enabled: bool,
    /// The configured batch size (rows); meaningful only when enabled.
    pub batch_rows: usize,
    /// Batches shipped across all tasks (one per task output when off).
    pub total_batches: u64,
    /// Peak shipment rows resident at any instant: bounded by
    /// `2 × batch_rows × active tasks` when batching, by the largest
    /// shipped relation (times active tasks) when materializing.
    pub peak_resident_rows: u64,
}

impl BatchLog {
    pub(crate) fn from_ledger(opts: &ExecOptions, ledger: &ShipLedger) -> BatchLog {
        BatchLog {
            enabled: opts.batching(),
            batch_rows: opts.batch_rows(),
            total_batches: ledger.total_batches(),
            peak_resident_rows: ledger.peak_resident_rows() as u64,
        }
    }
}

/// Per-task outcome of the ship seam.
pub(crate) struct ShipOutcome {
    /// Wire bytes shipped: the ship image's dictionary-encoded size when
    /// materializing, the sum of per-batch wire sizes when batching (each
    /// batch ships the dictionary slice its rows touch).
    pub ship_bytes: f64,
    /// Batches the output crossed the seam in.
    pub batches: u64,
}

/// Ships one task's output through the seam, doing the resident-row
/// accounting against `ledger`. `on_batch(batches_so_far, bytes_so_far)`
/// fires after each batch lands — the parallel executor uses it to patch
/// partial shipment progress into the dynamic scheduler.
pub(crate) fn ship_output(
    opts: &ExecOptions,
    ledger: &ShipLedger,
    task_id: usize,
    rel: &Relation,
    mut on_batch: impl FnMut(u64, f64),
) -> ShipOutcome {
    if !opts.batching() {
        // Materializing: the whole ship image crosses the wire as one
        // batch and is resident in full while it does.
        ledger.acquire(rel.len());
        ledger.release(rel.len());
        let bytes = crate::exec::ship_image_bytes(opts, task_id, rel);
        on_batch(1, bytes);
        return ShipOutcome {
            ship_bytes: bytes,
            batches: 1,
        };
    }
    let image = match &opts.shipcut {
        Some(cut) => cut.ship_image(task_id, rel),
        None => rel.clone(),
    };
    let mut stream = RelationStream::new(image, opts.batch_rows());
    let mut shipped = 0.0;
    let mut batches = 0u64;
    let mut in_flight: Option<usize> = None;
    while let Some(batch) = stream.next_batch() {
        ledger.acquire(batch.len());
        shipped += batch.wire_bytes() as f64;
        batches += 1;
        // Double-buffer window: the consumer finishes batch k−1 while
        // batch k is on the wire, so k−1's rows release now.
        if let Some(rows) = in_flight.take() {
            ledger.release(rows);
        }
        in_flight = Some(batch.len());
        on_batch(batches, shipped);
    }
    if let Some(rows) = in_flight {
        ledger.release(rows);
    }
    ShipOutcome {
        ship_bytes: shipped,
        batches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig_relstore::Value;

    fn rel(rows: usize) -> Relation {
        let mut r = Relation::empty(vec!["a".to_string()]);
        for i in 0..rows {
            r.push(vec![Value::int(i as i64 % 5)]);
        }
        r
    }

    #[test]
    fn stream_partitions_and_counts() {
        let r = rel(10);
        let mut s = RelationStream::new(r.clone(), 4);
        assert_eq!(s.batches_left(), 3);
        let mut total = 0;
        while let Some(b) = s.next_batch() {
            assert!(b.len() <= 4 && !b.is_empty());
            total += b.len();
        }
        assert_eq!(total, 10);
        assert_eq!(s.batches_left(), 0);
    }

    #[test]
    fn batched_ledger_peak_is_the_double_buffer_window() {
        let opts = ExecOptions {
            policy: crate::plan::ExecPolicy {
                batching: true,
                batch_rows: 4,
                ..crate::plan::ExecPolicy::default()
            },
            ..ExecOptions::default()
        };
        let ledger = ShipLedger::default();
        let out = ship_output(&opts, &ledger, 0, &rel(10), |_, _| {});
        assert_eq!(out.batches, 3);
        // Two batches resident at once, never the whole relation.
        assert_eq!(ledger.peak_resident_rows(), 8);
        assert_eq!(ledger.total_batches(), 3);
    }

    #[test]
    fn materializing_ledger_holds_the_whole_relation() {
        let opts = ExecOptions::default();
        let ledger = ShipLedger::default();
        let out = ship_output(&opts, &ledger, 0, &rel(10), |_, _| {});
        assert_eq!(out.batches, 1);
        assert_eq!(ledger.peak_resident_rows(), 10);
        assert_eq!(out.ship_bytes, rel(10).wire_bytes() as f64);
    }
}
