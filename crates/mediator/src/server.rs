//! The overload-resilient request server: a bounded, seeded open-loop
//! queue in front of [`Mediator`].
//!
//! Four defenses compose here:
//!
//! - **Admission control** — a global queue bound, a logical in-flight
//!   limit, and a per-tenant quota; anything over a limit is rejected
//!   immediately with [`MediatorError::Overloaded`] instead of queueing
//!   without bound.
//! - **Deadline budgets** — each admitted request carries a budget from its
//!   arrival; requests are dispatched earliest-deadline-first, a request
//!   whose budget expires while queued fails fast without executing, and
//!   one that completes past its budget terminates as
//!   [`Disposition::DeadlineExceeded`]. The remaining budget is also bound
//!   as a wall-clock [`crate::Deadline`] into execution, so a pathological
//!   hang surfaces instead of blocking the server.
//! - **Per-source circuit breakers** — after a configured number of
//!   consecutive fault-classified failures naming a source, its breaker
//!   trips open: requests needing it fail fast to a replica when one is
//!   usable, or are served *degraded* (the source's tables read as empty
//!   views, see [`crate::RequestCtx::skip_sources`]). Seeded half-open
//!   probes re-try the source live and close the breaker on success.
//! - **Graceful degradation** — a degraded completion names the skipped
//!   subtrees; output validation and the document constraint check are
//!   scoped out for the partial document.
//!
//! The server runs on a **logical clock**: arrivals carry simulated
//! timestamps, a request's logical service time is its simulated response
//! time plus the nominal fault stalls, and queueing/percentiles/ledgers are
//! computed on those logical times. Execution itself is real — documents
//! and errors come from actually running each dispatched request — so the
//! whole run is deterministic for a given seed and workload, on any
//! machine. Environment outage storms are part of the workload: each
//! [`Arrival`] lists the sources that are down when it is dispatched.

use crate::error::MediatorError;
use crate::faults::mix;
use crate::obs::{RunReport, ServerObs};
use crate::pipeline::MediatorOptions;
use crate::schedule::EdfGate;
use crate::service::{Mediator, RequestCtx, ServedRequest};
use aig_core::spec::Aig;
use aig_prng::{Rng, SeedableRng, StdRng};
use aig_relstore::{Catalog, SourceId, Value};
use aig_xml::XmlTree;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Minimum wall-clock allowance bound into an executing request as its
/// hang defense (see [`Sim::dispatch`]): never less than this, however
/// little *logical* budget remains, so deadline outcomes are decided by
/// the logical clock alone on any machine.
const WALL_DEFENSE_FLOOR_SECS: f64 = 0.25;

/// Tuning of the server's defenses.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Seed of the probe-jitter randomness (part of the report).
    pub seed: u64,
    /// Global bound on requests queued behind the in-flight slots. With a
    /// zero-length queue, overflow rejections carry scope `in_flight`.
    pub max_queue: usize,
    /// Logical in-flight slots (simulated concurrency).
    pub max_in_flight: usize,
    /// Per-tenant bound on queued + in-flight requests.
    pub tenant_quota: usize,
    /// Deadline budget for arrivals that do not name their own (None =
    /// those requests run unbounded).
    pub default_deadline_secs: Option<f64>,
    /// Consecutive fault-classified failures naming a source before its
    /// breaker trips open.
    pub breaker_threshold: usize,
    /// Logical seconds an open breaker waits before a half-open probe;
    /// jittered by up to +25%, seeded, so probes do not synchronize.
    pub breaker_cooldown_secs: f64,
    /// Serve requests degraded when an open breaker has no usable replica;
    /// when false such requests fail fast instead.
    pub degrade: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            seed: 0xC1AC_B4EA_4E45,
            max_queue: 64,
            max_in_flight: 4,
            tenant_quota: 32,
            default_deadline_secs: None,
            breaker_threshold: 3,
            breaker_cooldown_secs: 30.0,
            degrade: true,
        }
    }
}

/// One open-loop arrival: who asks, when (logical seconds), under what
/// budget, with which bound arguments — and which sources the environment
/// has down at dispatch time (the chaos harness's storm schedule).
#[derive(Debug, Clone)]
pub struct Arrival {
    pub tenant: String,
    /// Logical arrival time in seconds from the workload's origin.
    pub at_secs: f64,
    /// Deadline budget relative to arrival; None falls back to
    /// [`ServerConfig::default_deadline_secs`].
    pub deadline_secs: Option<f64>,
    pub args: Vec<(String, Value)>,
    /// Sources hard-down in the environment while this request runs.
    pub outage_sources: Vec<String>,
}

/// The single structured outcome every offered request terminates with.
#[derive(Debug)]
pub enum Disposition {
    /// Clean completion in budget: full data, document attached.
    Completed,
    /// Refused at admission ([`MediatorError::Overloaded`]).
    Rejected(MediatorError),
    /// Budget expired — queued too long, mid-execution, or finished late
    /// ([`MediatorError::DeadlineExceeded`]).
    DeadlineExceeded(MediatorError),
    /// Completed in budget but with the named subtrees served from empty
    /// degraded views.
    Degraded { skipped: Vec<String> },
    /// Execution surfaced an error after retries and failover.
    Failed(MediatorError),
}

impl Disposition {
    /// The ledger bucket this outcome counts in.
    pub fn tag(&self) -> &'static str {
        match self {
            Disposition::Completed => "completed",
            Disposition::Rejected(_) => "rejected",
            Disposition::DeadlineExceeded(_) => "deadline_exceeded",
            Disposition::Degraded { .. } => "degraded",
            Disposition::Failed(_) => "failed",
        }
    }
}

/// Terminal record of one offered request.
#[derive(Debug)]
pub struct RequestOutcome {
    /// Index into the arrival slice the server was run with.
    pub index: usize,
    pub tenant: String,
    pub arrived_secs: f64,
    /// Logical termination time (equals `arrived_secs` for rejections).
    pub finished_secs: f64,
    /// `finished_secs - arrived_secs`.
    pub latency_secs: f64,
    pub disposition: Disposition,
    /// The canonical document of a completed or degraded request.
    pub document: Option<XmlTree>,
}

/// Everything one server run produced: per-request outcomes, the balanced
/// ledger, and the schema-v7 summary report for [`crate::render_report`].
#[derive(Debug)]
pub struct ServerRun {
    pub outcomes: Vec<RequestOutcome>,
    pub obs: ServerObs,
    pub report: RunReport,
}

/// Per-source circuit breaker state.
#[derive(Debug, Clone, Default)]
struct Breaker {
    /// Consecutive fault-classified failures naming the source.
    consecutive: usize,
    open: bool,
    /// Logical time of the next half-open probe while open.
    probe_at: f64,
    /// Arrival index of the in-flight half-open probe, if any.
    probing: Option<usize>,
    /// Trips so far (jitter stream coordinate).
    trips: u64,
}

/// A bounded, deadline-aware request server wrapping a [`Mediator`].
#[derive(Debug)]
pub struct MediatorServer {
    mediator: Mediator,
    config: ServerConfig,
    /// Cross-request EDF arbitration of source access, shared by every
    /// request this server dispatches.
    gate: Arc<EdfGate>,
}

impl MediatorServer {
    pub fn new(
        catalog: Catalog,
        options: &MediatorOptions,
        config: ServerConfig,
    ) -> Result<MediatorServer, MediatorError> {
        Ok(MediatorServer {
            mediator: Mediator::new(catalog, options)?,
            config,
            gate: Arc::new(EdfGate::new()),
        })
    }

    pub fn mediator(&self) -> &Mediator {
        &self.mediator
    }

    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Runs one open-loop workload to completion. Every arrival terminates
    /// with exactly one [`RequestOutcome`], in arrival-slice order.
    pub fn run(&self, aig: &Aig, arrivals: &[Arrival]) -> ServerRun {
        let mut order: Vec<usize> = (0..arrivals.len()).collect();
        order.sort_by(|&a, &b| {
            arrivals[a]
                .at_secs
                .total_cmp(&arrivals[b].at_secs)
                .then(a.cmp(&b))
        });
        let mut sim = Sim {
            server: self,
            aig,
            arrivals,
            queue: Vec::new(),
            inflight: Vec::new(),
            tenant_load: HashMap::new(),
            breakers: BTreeMap::new(),
            outcomes: (0..arrivals.len()).map(|_| None).collect(),
            latencies: Vec::new(),
            obs: ServerObs {
                enabled: true,
                seed: self.config.seed,
                ..ServerObs::default()
            },
        };
        for &idx in &order {
            let now = arrivals[idx].at_secs;
            sim.drain(now);
            sim.offer(idx, now);
        }
        sim.drain(f64::INFINITY);
        sim.finish()
    }

    /// Deterministic stand-in for the logical service time of a failed
    /// request (failures produce no report to read simulated times from):
    /// the retry policy's worst case of full-timeout attempts.
    fn failure_penalty_secs(&self) -> f64 {
        let retry = &self.mediator.policy().retry;
        let attempt = if retry.timeout_secs.is_finite() {
            retry.timeout_secs
        } else {
            1.0
        };
        (retry.max_attempts.max(1) as f64) * attempt.max(0.05)
    }

    /// The jittered cooldown until the next half-open probe of `source`
    /// after its `trips`-th trip: `cooldown * [1.0, 1.25)`, seeded.
    fn probe_cooldown_secs(&self, source: SourceId, trips: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(mix(&[
            self.config.seed,
            0xB4EA_4E40,
            source.0 as u64,
            trips,
        ]));
        self.config.breaker_cooldown_secs.max(0.0) * (1.0 + 0.25 * rng.gen_range(0.0f64..1.0))
    }
}

/// One dispatched request waiting out its logical service time. Execution
/// already happened at dispatch; the result is classified at `finish_at`.
struct InFlight {
    idx: usize,
    finish_at: f64,
    deadline_at: Option<f64>,
    budget_secs: Option<f64>,
    result: Result<ServedRequest, MediatorError>,
    /// Non-mediator sources this request served live (not rerouted or
    /// skipped) — success resets their failure streaks.
    live: Vec<SourceId>,
    /// Open breakers this request probed half-open.
    probed: Vec<SourceId>,
}

/// The discrete-event state of one [`MediatorServer::run`].
struct Sim<'a> {
    server: &'a MediatorServer,
    aig: &'a Aig,
    arrivals: &'a [Arrival],
    /// Admitted arrival indices waiting for an in-flight slot.
    queue: Vec<usize>,
    inflight: Vec<InFlight>,
    /// Queued + in-flight requests per tenant.
    tenant_load: HashMap<&'a str, usize>,
    breakers: BTreeMap<SourceId, Breaker>,
    outcomes: Vec<Option<RequestOutcome>>,
    /// Latencies of every terminated *admitted* request.
    latencies: Vec<f64>,
    obs: ServerObs,
}

impl<'a> Sim<'a> {
    /// Admission control for one arrival at logical time `now`.
    fn offer(&mut self, idx: usize, now: f64) {
        let cfg = &self.server.config;
        self.obs.offered += 1;
        let tenant = self.arrivals[idx].tenant.as_str();
        let load = self.tenant_load.get(tenant).copied().unwrap_or(0);
        if load >= cfg.tenant_quota.max(1) {
            self.reject(idx, now, "tenant", load, cfg.tenant_quota.max(1));
            return;
        }
        *self.tenant_load.entry(tenant).or_insert(0) += 1;
        self.obs.admitted += 1;
        if self.inflight.len() < cfg.max_in_flight.max(1) {
            self.dispatch(idx, now);
        } else if self.queue.len() < cfg.max_queue {
            self.queue.push(idx);
            self.obs.max_queue_depth = self.obs.max_queue_depth.max(self.queue.len());
        } else {
            // Undo the provisional admission: the request bounces.
            self.obs.admitted -= 1;
            *self.tenant_load.get_mut(tenant).expect("just inserted") -= 1;
            if cfg.max_queue == 0 {
                self.reject(
                    idx,
                    now,
                    "in_flight",
                    self.inflight.len(),
                    cfg.max_in_flight,
                );
            } else {
                self.reject(idx, now, "queue", self.queue.len(), cfg.max_queue);
            }
        }
    }

    fn reject(&mut self, idx: usize, now: f64, scope: &str, depth: usize, limit: usize) {
        self.obs.rejected += 1;
        match scope {
            "queue" => self.obs.rejected_queue += 1,
            "in_flight" => self.obs.rejected_in_flight += 1,
            _ => self.obs.rejected_tenant += 1,
        }
        let error = MediatorError::Overloaded {
            tenant: self.arrivals[idx].tenant.clone(),
            scope: scope.to_string(),
            depth,
            limit,
        };
        self.record(idx, now, Disposition::Rejected(error), None);
    }

    /// Completes every in-flight request finishing by `until`, dispatching
    /// queued requests (earliest deadline first) as slots free up.
    fn drain(&mut self, until: f64) {
        while let Some(pos) = self
            .inflight
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.finish_at.total_cmp(&b.finish_at).then(a.idx.cmp(&b.idx)))
            .map(|(pos, _)| pos)
        {
            if self.inflight[pos].finish_at > until {
                break;
            }
            let fly = self.inflight.swap_remove(pos);
            let freed_at = fly.finish_at;
            self.complete(fly);
            while self.inflight.len() < self.server.config.max_in_flight.max(1) {
                let Some(qpos) = self.pick_edf() else { break };
                let idx = self.queue.remove(qpos);
                self.dispatch(idx, freed_at);
            }
        }
    }

    /// The queued request to dispatch next: earliest absolute deadline
    /// first, deadline-less requests last, arrival order breaking ties.
    fn pick_edf(&self) -> Option<usize> {
        self.queue
            .iter()
            .enumerate()
            .min_by(
                |(_, &a), (_, &b)| match (self.deadline_at(a), self.deadline_at(b)) {
                    (None, None) => a.cmp(&b),
                    (None, Some(_)) => std::cmp::Ordering::Greater,
                    (Some(_), None) => std::cmp::Ordering::Less,
                    (Some(x), Some(y)) => x.total_cmp(&y).then(a.cmp(&b)),
                },
            )
            .map(|(pos, _)| pos)
    }

    fn budget_secs(&self, idx: usize) -> Option<f64> {
        self.arrivals[idx]
            .deadline_secs
            .or(self.server.config.default_deadline_secs)
    }

    fn deadline_at(&self, idx: usize) -> Option<f64> {
        self.budget_secs(idx)
            .map(|b| self.arrivals[idx].at_secs + b)
    }

    /// Executes one admitted request at logical time `now` and parks it
    /// in flight until its logical completion.
    fn dispatch(&mut self, idx: usize, now: f64) {
        let arrival = &self.arrivals[idx];
        let budget = self.budget_secs(idx);
        let deadline_at = self.deadline_at(idx);
        if let (Some(budget), Some(deadline)) = (budget, deadline_at) {
            if now >= deadline {
                // The budget drained away in the queue: fail fast without
                // spending execution on a result nobody can use.
                let error = MediatorError::DeadlineExceeded {
                    task: "queue".to_string(),
                    budget_secs: budget,
                    elapsed_secs: now - arrival.at_secs,
                };
                self.record(idx, now, Disposition::DeadlineExceeded(error), None);
                return;
            }
        }

        let catalog = self.server.mediator.catalog();
        let env_down: BTreeSet<SourceId> = arrival
            .outage_sources
            .iter()
            .filter_map(|name| catalog.source_id(name).ok())
            .collect();
        // Breaker routing on top of the environment's storm outages.
        let mut outages: BTreeSet<String> = arrival.outage_sources.iter().cloned().collect();
        let mut skips: Vec<String> = Vec::new();
        let mut probed: Vec<SourceId> = Vec::new();
        for (&sid, breaker) in self.breakers.iter() {
            if !breaker.open {
                continue;
            }
            if breaker.probing.is_none() && now >= breaker.probe_at {
                // Half-open: this request carries the probe — no breaker
                // routing for the source (the environment still applies).
                probed.push(sid);
                continue;
            }
            let name = catalog.source(sid).name().to_string();
            let replica_usable = catalog.replica_of(sid).is_some_and(|replica| {
                !env_down.contains(&replica)
                    && !self.breakers.get(&replica).map(|b| b.open).unwrap_or(false)
            });
            if replica_usable || !self.server.config.degrade {
                // Fail fast: reroute to the replica before the first
                // attempt (or surface SourceUnavailable immediately).
                outages.insert(name);
            } else {
                skips.push(name);
            }
        }
        for &sid in &probed {
            self.breakers
                .get_mut(&sid)
                .expect("probed breaker exists")
                .probing = Some(idx);
            self.obs.breaker_probes += 1;
        }

        let ctx = RequestCtx {
            // The remaining *logical* budget doubles as a wall-clock hang
            // defense inside execution. Floored so that a healthy run (real
            // execution is milliseconds) never trips it on a slow machine —
            // deadline classification stays purely logical-clock, hence
            // machine-independent; a genuine hang still surfaces.
            deadline_secs: deadline_at.map(|d| (d - now).max(WALL_DEFENSE_FLOOR_SECS)),
            extra_outages: outages.iter().cloned().collect(),
            skip_sources: skips,
            gate: Some(self.server.gate.clone()),
        };
        let args: Vec<(&str, Value)> = arrival
            .args
            .iter()
            .map(|(name, value)| (name.as_str(), value.clone()))
            .collect();
        let result = self.server.mediator.request_with(self.aig, &args, &ctx);
        // Logical service time: the simulated response of the plan plus
        // the nominal fault stalls and backoffs the run absorbed.
        let service_secs = match &result {
            Ok(served) => {
                served.report.sim_response_merged_secs
                    + served.report.resilience.backoff_secs
                    + served.report.resilience.stall_secs
            }
            Err(_) => self.server.failure_penalty_secs(),
        };
        let live: Vec<SourceId> = catalog
            .source_ids()
            .filter(|sid| !sid.is_mediator())
            .filter(|sid| {
                let name = catalog.source(*sid).name();
                !ctx.extra_outages.iter().any(|o| o == name)
                    && !ctx.skip_sources.iter().any(|s| s == name)
            })
            .collect();
        self.inflight.push(InFlight {
            idx,
            finish_at: now + service_secs.max(0.0),
            deadline_at,
            budget_secs: budget,
            result,
            live,
            probed,
        });
        self.obs.max_in_flight = self.obs.max_in_flight.max(self.inflight.len());
    }

    /// Classifies one finished request and updates the breakers.
    fn complete(&mut self, fly: InFlight) {
        let now = fly.finish_at;
        let idx = fly.idx;
        match fly.result {
            Ok(served) => {
                for &sid in &fly.live {
                    if let Some(breaker) = self.breakers.get_mut(&sid) {
                        if !breaker.open {
                            breaker.consecutive = 0;
                        }
                    }
                }
                for &sid in &fly.probed {
                    let breaker = self.breakers.get_mut(&sid).expect("probed breaker exists");
                    if breaker.open && breaker.probing == Some(idx) {
                        breaker.open = false;
                        breaker.probing = None;
                        breaker.consecutive = 0;
                        self.obs.breaker_closes += 1;
                    }
                }
                let late = fly.deadline_at.map(|d| now > d).unwrap_or(false);
                if late {
                    let error = MediatorError::DeadlineExceeded {
                        task: "completion".to_string(),
                        budget_secs: fly.budget_secs.unwrap_or(0.0),
                        elapsed_secs: now - self.arrivals[idx].at_secs,
                    };
                    self.record(idx, now, Disposition::DeadlineExceeded(error), None);
                } else {
                    let document = crate::pipeline::canonical(self.aig, &served.run.tree);
                    if served.skipped.is_empty() {
                        self.record(idx, now, Disposition::Completed, Some(document));
                    } else {
                        let skipped = served.skipped;
                        self.record(idx, now, Disposition::Degraded { skipped }, Some(document));
                    }
                }
            }
            Err(error) => {
                if let Some(name) = fault_source(&error) {
                    if let Ok(sid) = self.server.mediator.catalog().source_id(name) {
                        let breaker = self.breakers.entry(sid).or_default();
                        breaker.consecutive += 1;
                        if !breaker.open
                            && breaker.consecutive >= self.server.config.breaker_threshold.max(1)
                        {
                            breaker.open = true;
                            breaker.trips += 1;
                            let trips = breaker.trips;
                            breaker.probe_at = now + self.server.probe_cooldown_secs(sid, trips);
                            self.obs.breaker_trips += 1;
                        }
                    }
                }
                // Probes that did not come back clean stay open and are
                // rescheduled, whatever source the failure named.
                for &sid in &fly.probed {
                    let breaker = self.breakers.get_mut(&sid).expect("probed breaker exists");
                    if breaker.open && breaker.probing == Some(idx) {
                        breaker.probing = None;
                        let trips = breaker.trips;
                        breaker.probe_at = now + self.server.probe_cooldown_secs(sid, trips);
                    }
                }
                let disposition = match &error {
                    MediatorError::DeadlineExceeded { .. } => Disposition::DeadlineExceeded(error),
                    _ => Disposition::Failed(error),
                };
                self.record(idx, now, disposition, None);
            }
        }
    }

    /// Books the single terminal outcome of request `idx`.
    fn record(
        &mut self,
        idx: usize,
        now: f64,
        disposition: Disposition,
        document: Option<XmlTree>,
    ) {
        let arrival = &self.arrivals[idx];
        let admitted = !matches!(disposition, Disposition::Rejected(_));
        if admitted {
            match disposition {
                Disposition::Completed => self.obs.completed += 1,
                Disposition::DeadlineExceeded(_) => self.obs.deadline_exceeded += 1,
                Disposition::Degraded { .. } => self.obs.degraded += 1,
                Disposition::Failed(_) => self.obs.failed += 1,
                Disposition::Rejected(_) => unreachable!(),
            }
            let load = self
                .tenant_load
                .get_mut(arrival.tenant.as_str())
                .expect("admitted tenant is loaded");
            *load = load.saturating_sub(1);
            self.latencies.push(now - arrival.at_secs);
        }
        debug_assert!(self.outcomes[idx].is_none(), "double outcome for {idx}");
        self.outcomes[idx] = Some(RequestOutcome {
            index: idx,
            tenant: arrival.tenant.clone(),
            arrived_secs: arrival.at_secs,
            finished_secs: now,
            latency_secs: now - arrival.at_secs,
            disposition,
            document,
        });
    }

    fn finish(mut self) -> ServerRun {
        self.latencies.sort_by(|a, b| a.total_cmp(b));
        self.obs.p50_secs = percentile(&self.latencies, 0.50);
        self.obs.p95_secs = percentile(&self.latencies, 0.95);
        self.obs.p99_secs = percentile(&self.latencies, 0.99);
        self.obs.balanced = self.obs.offered == self.obs.admitted + self.obs.rejected
            && self.obs.admitted
                == self.obs.completed
                    + self.obs.deadline_exceeded
                    + self.obs.degraded
                    + self.obs.failed;
        let outcomes: Vec<RequestOutcome> = self
            .outcomes
            .into_iter()
            .map(|o| o.expect("every offered request terminates"))
            .collect();
        let report = RunReport::server_summary(self.obs.clone());
        ServerRun {
            outcomes,
            obs: self.obs,
            report,
        }
    }
}

/// The source a fault-classified error names, feeding the breakers.
fn fault_source(error: &MediatorError) -> Option<&str> {
    match error {
        MediatorError::SourceFault { source, .. }
        | MediatorError::SourceUnavailable { source, .. }
        | MediatorError::IntegrityViolation { source, .. } => Some(source),
        _ => None,
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0.0 when empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}
