//! The end-to-end mediator pipeline (paper §5.1, Fig. 5).
//!
//! *Pre-processing*: constraints are compiled into guards (§3.3) and
//! multi-source queries decomposed into single-source chains (§3.4);
//! recursive AIGs are unfolded to a depth estimate (§5.5).
//! *Optimization*: the task graph is built, costed, scheduled (§5.3) and
//! merged (§5.4). *Execution*: the set-oriented queries run against the
//! sources and intermediate tables are cached; if the recursion frontier is
//! still producing data the AIG is unfolded deeper and re-run. *Tagging*:
//! the cached relations become the final DTD-conforming document.

use crate::cost::{measured_costs, CostGraph};
use crate::error::MediatorError;
use crate::exec::{execute_graph, ExecOptions, ExecResult, Scheduling};
use crate::faults::{FaultConfig, FaultPlan, RetryPolicy};
use crate::graph::{build_graph, source_histogram, GraphOptions, Occ, RelKey};
use crate::merge::{merge, no_merge, MergeOutcome};
use crate::obs::{build_report, Phases, ReportInputs, RunReport};
use crate::parallel::execute_graph_parallel;
use crate::sim::NetworkModel;
use crate::unfold::{unfold, CutOff};
use aig_core::spec::Aig;
use aig_core::{compile_constraints, decompose_queries};
use aig_relstore::{Catalog, SourceId, Value};
use aig_xml::{validate, XmlTree};
use std::collections::{BTreeMap, HashMap};

/// Options of a mediator run.
#[derive(Debug, Clone)]
pub struct MediatorOptions {
    /// Initial unfolding depth for recursive AIGs ("a user-supplied estimate
    /// d of the maximum depth", §5.5).
    pub unfold_depth: usize,
    /// Upper bound for frontier-driven re-unfolding.
    pub max_depth: usize,
    /// Truncate at the depth (the paper's §6 setup) or detect and extend.
    pub cutoff: CutOff,
    /// Whether query merging (§5.4) is applied when reporting response time.
    pub merging: bool,
    /// Whether compiled-constraint guards abort the run.
    pub check_guards: bool,
    /// Whether the output is validated against the DTD (sanity check).
    pub validate_output: bool,
    /// Execute with the per-source worker threads of [`crate::parallel`]
    /// instead of the sequential executor (identical relations; the run
    /// report additionally carries per-task queue/wait times).
    pub parallel_exec: bool,
    pub network: NetworkModel,
    pub graph: GraphOptions,
    /// Deterministic fault injection for source tasks (None = no faults).
    pub faults: Option<FaultConfig>,
    /// Retry/backoff/timeout policy when faults are injected.
    pub retry: RetryPolicy,
    /// Static (planned sequences) or dynamic (live ready-queue) scheduling
    /// in the parallel executor; ignored by the sequential executor.
    pub scheduling: Scheduling,
}

impl Default for MediatorOptions {
    fn default() -> Self {
        MediatorOptions {
            unfold_depth: 3,
            max_depth: 64,
            cutoff: CutOff::Frontier,
            merging: true,
            check_guards: true,
            validate_output: true,
            parallel_exec: false,
            network: NetworkModel::default(),
            graph: GraphOptions::default(),
            faults: None,
            retry: RetryPolicy::default(),
            scheduling: Scheduling::default(),
        }
    }
}

/// The result of a mediator run.
#[derive(Debug)]
pub struct MediatorRun {
    /// The final document.
    pub tree: XmlTree,
    /// The unfolding depth that sufficed.
    pub depth: usize,
    /// Task and source-query counts of the final graph.
    pub tasks: usize,
    pub source_queries: usize,
    /// Simulated response time without merging (measured query costs).
    pub response_unmerged_secs: f64,
    /// Simulated response time with merging (only meaningful when
    /// `options.merging`; equals unmerged otherwise).
    pub response_merged_secs: f64,
    /// Number of pair merges the optimizer applied.
    pub merges: usize,
    /// Tasks per source name.
    pub per_source: BTreeMap<String, usize>,
    /// Total wall-clock seconds spent executing tasks in-process.
    pub exec_secs: f64,
}

impl MediatorRun {
    /// The ratio the paper's Fig. 10 reports: evaluation time without query
    /// merging over evaluation time with it.
    pub fn merging_speedup(&self) -> f64 {
        if self.response_merged_secs > 0.0 {
            self.response_unmerged_secs / self.response_merged_secs
        } else {
            1.0
        }
    }
}

/// Runs the full pipeline on `aig` (an un-specialized AIG: constraints are
/// compiled and multi-source queries decomposed here).
pub fn run(
    aig: &Aig,
    catalog: &Catalog,
    args: &[(&str, Value)],
    options: &MediatorOptions,
) -> Result<MediatorRun, MediatorError> {
    run_with_report(aig, catalog, args, options).map(|(run, _)| run)
}

/// Per-source sequences in topological order (dependency-safe input for the
/// parallel executor when no schedule over raw task ids is available).
fn topo_per_source(graph: &crate::graph::TaskGraph) -> HashMap<SourceId, Vec<usize>> {
    let mut per_source: HashMap<SourceId, Vec<usize>> = HashMap::new();
    for &id in &graph.topo {
        per_source
            .entry(graph.tasks[id].source)
            .or_default()
            .push(id);
    }
    per_source
}

/// [`run`], additionally producing the full observability record of the run:
/// phase timers, per-task and per-source metrics, the merge decision log,
/// the final plan ordering, and simulated vs. actual timings.
pub fn run_with_report(
    aig: &Aig,
    catalog: &Catalog,
    args: &[(&str, Value)],
    options: &MediatorOptions,
) -> Result<(MediatorRun, RunReport), MediatorError> {
    let mut phases = Phases::new();
    // -- Pre-processing ------------------------------------------------------
    let compiled = phases.time("compile_constraints", || {
        if aig.constraints.is_empty() {
            Ok(aig.clone())
        } else {
            compile_constraints(aig)
        }
    })?;
    let (specialized, _report) = phases.time("decompose", || decompose_queries(&compiled))?;

    // Bind the fault model once: outage draws and per-attempt decisions are
    // functions of the seed, so every unfold round replays the same faults.
    let fault_plan = match &options.faults {
        Some(cfg) => Some(FaultPlan::new(cfg, catalog)?),
        None => None,
    };

    let mut depth = options.unfold_depth.max(1);
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let unfolded = phases.time("unfold", || unfold(&specialized, depth, options.cutoff))?;
        let graph = phases.time("graph_build", || {
            build_graph(&unfolded.aig, catalog, &options.graph)
        })?;
        let exec_opts = ExecOptions {
            check_guards: options.check_guards,
            faults: fault_plan.clone(),
            retry: options.retry.clone(),
            network: options.network.clone(),
            scheduling: options.scheduling,
            eval_scale: options.graph.eval_scale,
            pace: None,
        };
        let exec: ExecResult = phases.time("execute", || {
            if options.parallel_exec {
                let per_source = topo_per_source(&graph);
                execute_graph_parallel(
                    &unfolded.aig,
                    catalog,
                    &graph,
                    args,
                    &exec_opts,
                    &per_source,
                )
            } else {
                execute_graph(&unfolded.aig, catalog, &graph, args, &exec_opts)
            }
        })?;

        // Frontier check: if the deepest unfolded level still produced
        // instances, the data recurses deeper than `depth` — unfold further
        // (the paper's runtime re-unrolling, §5.5).
        if options.cutoff == CutOff::Frontier && !unfolded.frontier.is_empty() {
            let extend = phases.time("frontier_check", || -> Result<bool, MediatorError> {
                for site in &unfolded.frontier {
                    let Some(parent) = unfolded.aig.elem(&site.parent) else {
                        continue;
                    };
                    // The frontier parent's base instances: non-empty means
                    // the cut could have produced children.
                    let occ = graph
                        .bindings
                        .iter()
                        .find(|(_, b)| b.elem == parent)
                        .map(|(occ, _)| occ.clone())
                        .unwrap_or(Occ::mat(parent));
                    let base = exec.store.get(&RelKey::Instances(occ.base))?;
                    if !base.is_empty() {
                        return Ok(true);
                    }
                }
                Ok(false)
            })?;
            if extend {
                if depth >= options.max_depth {
                    return Err(MediatorError::RecursionBudget {
                        max_depth: options.max_depth,
                    });
                }
                depth = (depth * 2).min(options.max_depth);
                continue;
            }
        }

        // -- Tagging ----------------------------------------------------------
        let tree = phases.time("tag", || {
            crate::tagging::tag_document(&unfolded.aig, &graph, &exec.store)
        })?;
        if options.validate_output {
            phases.time("validate", || {
                validate(&tree, &aig.dtd)
                    .map_err(|e| MediatorError::Internal(format!("output validation: {e}")))
            })?;
        }

        // -- Response-time simulation (§5.2-5.4) -------------------------------
        let (costs, cg) = phases.time("simulate", || {
            let costs = measured_costs(
                &graph,
                &exec.measured,
                options.graph.cost_model.per_query_overhead_secs,
                options.graph.eval_scale,
            );
            let cg = CostGraph::from_task_graph(&graph, &costs).contract_passthrough();
            (costs, cg)
        });
        let baseline = phases.time("schedule", || no_merge(&cg, &options.network));
        let merged: MergeOutcome = phases.time("merge", || {
            if options.merging {
                merge(
                    &cg,
                    &options.network,
                    options.graph.cost_model.per_query_overhead_secs,
                )
            } else {
                baseline.clone()
            }
        });
        let exec_secs: f64 = exec.measured.iter().map(|m| m.secs).sum();
        let per_source = source_histogram(&graph, catalog);
        let total_secs = phases.elapsed_secs();
        let report = build_report(
            ReportInputs {
                graph: &graph,
                catalog,
                measured: &exec.measured,
                costs: &costs,
                baseline: &baseline,
                merged: &merged,
                net: &options.network,
                depth,
                unfold_rounds: rounds,
                parallel_exec: options.parallel_exec,
                resilience: &exec.resilience,
                fault_seed: fault_plan.as_ref().map(|p| p.seed()),
                sched: &exec.sched,
            },
            phases,
            total_secs,
        );
        return Ok((
            MediatorRun {
                tree,
                depth,
                tasks: graph.len(),
                source_queries: graph.source_query_count,
                response_unmerged_secs: baseline.response_secs,
                response_merged_secs: merged.response_secs,
                merges: merged.merges,
                per_source,
                exec_secs,
            },
            report,
        ));
    }
}

/// Canonical form for comparing documents across evaluation strategies:
/// children of star-production elements are sorted by content (their order
/// is implementation-defined — the paper's pipeline emits them by
/// sort-merge, §5.1).
pub fn canonical(aig: &Aig, tree: &XmlTree) -> XmlTree {
    let star_parents: std::collections::HashSet<String> = aig
        .dtd
        .elements()
        .filter(|&e| matches!(aig.dtd.production(e), aig_xml::ContentModel::Star(_)))
        .map(|e| aig.dtd.name(e).to_string())
        .collect();
    tree.sort_star_children(|tag| star_parents.contains(tag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig_core::eval::evaluate;
    use aig_core::paper::{mini_hospital_catalog, sigma0};
    use aig_core::AigError;

    fn opts() -> MediatorOptions {
        MediatorOptions::default()
    }

    #[test]
    fn mediator_matches_conceptual_evaluation_on_sigma0() {
        let aig = sigma0().unwrap();
        let catalog = mini_hospital_catalog().unwrap();
        for date in ["d1", "d2", "d9"] {
            let conceptual = evaluate(&aig, &catalog, &[("date", Value::str(date))]).unwrap();
            let run = run(&aig, &catalog, &[("date", Value::str(date))], &opts()).unwrap();
            assert_eq!(
                canonical(&aig, &run.tree),
                canonical(&aig, &conceptual.tree),
                "mediator and conceptual evaluation differ on {date}"
            );
        }
    }

    #[test]
    fn mediator_reports_plan_metrics() {
        let aig = sigma0().unwrap();
        let catalog = mini_hospital_catalog().unwrap();
        let run = run(&aig, &catalog, &[("date", Value::str("d1"))], &opts()).unwrap();
        assert!(run.tasks > 10);
        assert!(run.source_queries >= 5, "queries: {}", run.source_queries);
        assert!(run.response_unmerged_secs > 0.0);
        assert!(run.response_merged_secs <= run.response_unmerged_secs);
        assert!(run.depth >= 3);
        assert!(run.per_source.len() >= 5); // four DBs + mediator
    }

    #[test]
    fn frontier_mode_extends_until_data_depth() {
        let aig = sigma0().unwrap();
        let catalog = mini_hospital_catalog().unwrap();
        let mut options = opts();
        options.unfold_depth = 1;
        let run = run(&aig, &catalog, &[("date", Value::str("d1"))], &options).unwrap();
        // Data depth is 3 (t1 -> t4 -> t5): depth 1 -> 2 -> 4.
        assert!(run.depth >= 3, "depth {}", run.depth);
        let text = aig_xml::serialize::to_string(&run.tree);
        assert!(text.contains("bloodwork"), "deep treatment missing");
    }

    #[test]
    fn truncate_mode_stops_at_depth() {
        let aig = sigma0().unwrap();
        let catalog = mini_hospital_catalog().unwrap();
        let mut options = opts();
        options.unfold_depth = 1;
        options.cutoff = CutOff::Truncate;
        let run = run(&aig, &catalog, &[("date", Value::str("d1"))], &options);
        // Truncation drops t4/t5; the inclusion constraint *still holds*
        // (billing covers all), but t4/t5 items disappear because the bill
        // is driven by the collected (truncated) set. The run succeeds with
        // a shallower document.
        let run = run.unwrap();
        assert_eq!(run.depth, 1);
        let text = aig_xml::serialize::to_string(&run.tree);
        assert!(text.contains("surgery"));
        assert!(!text.contains("anesthesia"));
    }

    #[test]
    fn guard_violations_abort_the_mediator_run() {
        // Duplicate billing row for t1: the key is violated.
        let aig = sigma0().unwrap();
        let full = mini_hospital_catalog().unwrap();
        let mut catalog = aig_core::paper::empty_hospital_catalog();
        for db in ["DB1", "DB2", "DB4"] {
            let src = full.source_id(db).unwrap();
            let dst = catalog.source_id(db).unwrap();
            for table in full.source(src).table_names() {
                let rows = full.source(src).table(table).unwrap().rows().to_vec();
                let t = catalog.source_mut(dst).table_mut(table).unwrap();
                for row in rows {
                    t.insert(row).unwrap();
                }
            }
        }
        let dst = catalog.source_id("DB3").unwrap();
        *catalog.source_mut(dst) = aig_relstore::Database::new("DB3");
        let mut billing = aig_relstore::Table::new(aig_relstore::TableSchema::strings(
            "billing",
            &["trId", "price"],
            &[],
        ));
        for (t, p) in [
            ("t1", "100"),
            ("t1", "999"),
            ("t2", "250"),
            ("t3", "80"),
            ("t4", "40"),
            ("t5", "15"),
        ] {
            billing.insert(vec![Value::str(t), Value::str(p)]).unwrap();
        }
        catalog.source_mut(dst).add_table(billing).unwrap();

        let err = run(&aig, &catalog, &[("date", Value::str("d1"))], &opts()).unwrap_err();
        assert!(
            matches!(
                err,
                MediatorError::Aig(AigError::ConstraintViolation { .. })
            ),
            "{err}"
        );
        // With guards disabled the run completes.
        let mut options = opts();
        options.check_guards = false;
        options.validate_output = true;
        assert!(run_ok(&aig, &catalog, &options));
    }

    fn run_ok(aig: &Aig, catalog: &Catalog, options: &MediatorOptions) -> bool {
        run(aig, catalog, &[("date", Value::str("d1"))], options).is_ok()
    }

    #[test]
    fn merging_is_applied_on_sigma0() {
        let aig = sigma0().unwrap();
        let catalog = mini_hospital_catalog().unwrap();
        let run = run(&aig, &catalog, &[("date", Value::str("d1"))], &opts()).unwrap();
        assert!(run.merges > 0, "σ0 has same-source queries to merge");
        assert!(run.merging_speedup() >= 1.0);
    }
}
