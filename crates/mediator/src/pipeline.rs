//! The end-to-end mediator pipeline (paper §5.1, Fig. 5).
//!
//! *Pre-processing*: constraints are compiled into guards (§3.3) and
//! multi-source queries decomposed into single-source chains (§3.4);
//! recursive AIGs are unfolded to a depth estimate (§5.5).
//! *Optimization*: the task graph is built, costed, scheduled (§5.3) and
//! merged (§5.4). *Execution*: the set-oriented queries run against the
//! sources and intermediate tables are cached; if the recursion frontier is
//! still producing data the AIG is unfolded deeper and re-run. *Tagging*:
//! the cached relations become the final DTD-conforming document.
//!
//! Since the prepare/execute split ([`crate::plan`]) this module is the
//! one-shot facade: [`run`] / [`run_with_report`] prepare a fresh plan and
//! execute it once, with the frontier loop re-preparing deeper as needed.
//! Long-lived callers should use [`crate::service::Mediator`], which caches
//! prepared plans across requests.

use crate::error::{ConfigError, MediatorError};
use crate::exec::{ExecOptions, Scheduling};
use crate::faults::{FaultConfig, FaultPlan, RetryPolicy};
use crate::graph::GraphOptions;
use crate::obs::{CacheObs, Phases, RunReport};
use crate::plan::{deepen, execute_prepared, prepare, ExecPolicy, ExecuteOutcome, PlanOptions};
use crate::sim::NetworkModel;
use crate::unfold::CutOff;
use aig_core::spec::Aig;
use aig_relstore::{Catalog, Value};
use aig_xml::XmlTree;
use std::collections::BTreeMap;

/// Options of a mediator run: the compatibility facade over the split
/// [`PlanOptions`] (argument-independent planning) and [`ExecPolicy`]
/// (per-request execution). Construct with [`MediatorOptions::default`] and
/// mutate fields, or chain [`MediatorOptions::builder`].
#[derive(Debug, Clone)]
pub struct MediatorOptions {
    /// Initial unfolding depth for recursive AIGs ("a user-supplied estimate
    /// d of the maximum depth", §5.5).
    pub unfold_depth: usize,
    /// Upper bound for frontier-driven re-unfolding.
    pub max_depth: usize,
    /// Truncate at the depth (the paper's §6 setup) or detect and extend.
    pub cutoff: CutOff,
    /// Whether query merging (§5.4) is applied when reporting response time.
    pub merging: bool,
    /// Whether compiled-constraint guards abort the run.
    pub check_guards: bool,
    /// Whether the output is validated against the DTD (sanity check).
    pub validate_output: bool,
    /// Whether the integrity defense runs: per-task guard checks on shipped
    /// relations plus the key/inclusion constraint check on the tagged
    /// document (see [`crate::integrity`]).
    pub check_integrity: bool,
    /// Execute with the per-source worker threads of [`crate::parallel`]
    /// instead of the sequential executor (identical relations; the run
    /// report additionally carries per-task queue/wait times).
    pub parallel_exec: bool,
    pub network: NetworkModel,
    pub graph: GraphOptions,
    /// Deterministic fault injection for source tasks (None = no faults).
    pub faults: Option<FaultConfig>,
    /// Retry/backoff/timeout policy when faults are injected.
    pub retry: RetryPolicy,
    /// Static (planned sequences) or dynamic (live ready-queue) scheduling
    /// in the parallel executor; ignored by the sequential executor.
    pub scheduling: Scheduling,
    /// Column-liveness pruning at ship boundaries: shipped relations are
    /// projected to the columns downstream consumers actually read (and
    /// deduplicated for set-semantics consumers) before byte accounting.
    /// Stores and the final document are byte-identical either way.
    pub shipcut: bool,
    /// Worker threads for the partitioned in-process kernels (hash join,
    /// canonical sort, dedup). `1` = sequential; results are byte-identical
    /// at any thread count.
    pub threads: usize,
    /// Minimum input size (rows) before a partitioned kernel engages;
    /// smaller inputs stay sequential. Byte-identical at any value — tests
    /// pin it to force either kernel path on small fixtures.
    pub par_threshold: usize,
    /// Per-request deadline budget in seconds (None = unbounded): no task
    /// attempt starts past it and expiry surfaces as
    /// [`crate::MediatorError::DeadlineExceeded`].
    pub deadline_secs: Option<f64>,
    /// Chunked shipment (streaming batch execution, see [`crate::batch`]):
    /// task outputs cross the ship seam in `batch_rows`-row batches and
    /// source queries feed hash-join builds and dedup incrementally, so
    /// peak resident shipment rows are bounded by the batch size instead
    /// of the largest relation. Stores and the final document are
    /// byte-identical either way. Off by default.
    pub batching: bool,
    /// Batch size (rows) of the chunked shipment seam; only consulted when
    /// `batching` is on. Must be nonzero (validated at build time).
    pub batch_rows: usize,
    /// Incremental re-evaluation on source deltas ([`crate::delta`]): the
    /// `Mediator` service keeps a post-run snapshot per plan and, after a
    /// row delta, re-runs only the affected task subgraph. One-shot `run`
    /// calls ignore the flag (there is no snapshot to reuse); documents
    /// are byte-identical either way. Off by default.
    pub incremental: bool,
}

impl Default for MediatorOptions {
    fn default() -> Self {
        MediatorOptions {
            unfold_depth: 3,
            max_depth: 64,
            cutoff: CutOff::Frontier,
            merging: true,
            check_guards: true,
            validate_output: true,
            check_integrity: false,
            parallel_exec: false,
            network: NetworkModel::default(),
            graph: GraphOptions::default(),
            faults: None,
            retry: RetryPolicy::default(),
            scheduling: Scheduling::default(),
            shipcut: true,
            threads: 1,
            par_threshold: aig_relstore::par::PAR_THRESHOLD,
            deadline_secs: None,
            batching: false,
            batch_rows: 2048,
            incremental: false,
        }
    }
}

impl MediatorOptions {
    /// A chainable builder starting from the defaults.
    pub fn builder() -> MediatorOptionsBuilder {
        MediatorOptionsBuilder {
            options: MediatorOptions::default(),
        }
    }

    /// Structural validation, applied by [`MediatorOptionsBuilder::build`]
    /// and by the run entry points (so hand-assembled options are caught
    /// too): zero knobs that would otherwise be silently clamped, and
    /// contradictory switch combinations, surface as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if self.par_threshold == 0 {
            return Err(ConfigError::ZeroParThreshold);
        }
        if self.batch_rows == 0 {
            return Err(ConfigError::ZeroBatchRows);
        }
        if self.batching && !self.shipcut {
            return Err(ConfigError::BatchingWithoutShipcut);
        }
        Ok(())
    }

    /// The argument-independent half: what the **Prepare** stage consumes
    /// (and what identifies a cached plan).
    pub fn plan_options(&self) -> PlanOptions {
        PlanOptions {
            unfold_depth: self.unfold_depth,
            max_depth: self.max_depth,
            cutoff: self.cutoff,
            merging: self.merging,
            graph: self.graph.clone(),
            shipcut: self.shipcut,
        }
    }

    /// The per-request half: what the **Execute** stage consumes.
    pub fn exec_policy(&self) -> ExecPolicy {
        ExecPolicy {
            check_guards: self.check_guards,
            validate_output: self.validate_output,
            check_integrity: self.check_integrity,
            parallel_exec: self.parallel_exec,
            network: self.network.clone(),
            faults: self.faults.clone(),
            retry: self.retry.clone(),
            scheduling: self.scheduling,
            threads: self.threads,
            par_threshold: self.par_threshold,
            deadline_secs: self.deadline_secs,
            batching: self.batching,
            batch_rows: self.batch_rows,
            incremental: self.incremental,
        }
    }

    /// Reassembles the facade from its two halves.
    pub fn from_parts(plan: PlanOptions, policy: ExecPolicy) -> MediatorOptions {
        MediatorOptions {
            unfold_depth: plan.unfold_depth,
            max_depth: plan.max_depth,
            cutoff: plan.cutoff,
            merging: plan.merging,
            graph: plan.graph,
            shipcut: plan.shipcut,
            check_guards: policy.check_guards,
            validate_output: policy.validate_output,
            check_integrity: policy.check_integrity,
            parallel_exec: policy.parallel_exec,
            network: policy.network,
            faults: policy.faults,
            retry: policy.retry,
            scheduling: policy.scheduling,
            threads: policy.threads,
            par_threshold: policy.par_threshold,
            deadline_secs: policy.deadline_secs,
            batching: policy.batching,
            batch_rows: policy.batch_rows,
            incremental: policy.incremental,
        }
    }
}

impl From<&MediatorOptions> for PlanOptions {
    fn from(options: &MediatorOptions) -> PlanOptions {
        options.plan_options()
    }
}

impl From<&MediatorOptions> for ExecPolicy {
    fn from(options: &MediatorOptions) -> ExecPolicy {
        options.exec_policy()
    }
}

/// Chainable construction of [`MediatorOptions`]. [`build`] validates the
/// assembled options and returns [`ConfigError`] on degenerate knobs or
/// contradictory switches — nothing is silently clamped:
///
/// ```
/// use aig_mediator::{ConfigError, CutOff, MediatorOptions, Scheduling};
///
/// let options = MediatorOptions::builder()
///     .unfold_depth(1)
///     .cutoff(CutOff::Frontier)
///     .parallel_exec(true)
///     .scheduling(Scheduling::Dynamic)
///     .build()
///     .unwrap();
/// assert_eq!(options.unfold_depth, 1);
/// assert!(options.parallel_exec);
///
/// let err = MediatorOptions::builder().threads(0).build().unwrap_err();
/// assert_eq!(err, ConfigError::ZeroThreads);
/// ```
///
/// [`build`]: MediatorOptionsBuilder::build
#[derive(Debug, Clone)]
pub struct MediatorOptionsBuilder {
    options: MediatorOptions,
}

impl MediatorOptionsBuilder {
    /// Initial unfolding depth for recursive AIGs (§5.5).
    ///
    /// ```
    /// use aig_mediator::MediatorOptions;
    /// let o = MediatorOptions::builder().unfold_depth(5).build().unwrap();
    /// assert_eq!(o.unfold_depth, 5);
    /// ```
    pub fn unfold_depth(mut self, depth: usize) -> Self {
        self.options.unfold_depth = depth;
        self
    }

    /// Upper bound for frontier-driven re-unfolding.
    ///
    /// ```
    /// use aig_mediator::MediatorOptions;
    /// let o = MediatorOptions::builder().max_depth(8).build().unwrap();
    /// assert_eq!(o.max_depth, 8);
    /// ```
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.options.max_depth = depth;
        self
    }

    /// Truncate at the unfolding depth or detect-and-extend the frontier.
    ///
    /// ```
    /// use aig_mediator::{CutOff, MediatorOptions};
    /// let o = MediatorOptions::builder().cutoff(CutOff::Truncate).build().unwrap();
    /// assert_eq!(o.cutoff, CutOff::Truncate);
    /// ```
    pub fn cutoff(mut self, cutoff: CutOff) -> Self {
        self.options.cutoff = cutoff;
        self
    }

    /// Whether query merging (§5.4) is applied.
    ///
    /// ```
    /// use aig_mediator::MediatorOptions;
    /// let o = MediatorOptions::builder().merging(false).build().unwrap();
    /// assert!(!o.merging);
    /// ```
    pub fn merging(mut self, merging: bool) -> Self {
        self.options.merging = merging;
        self
    }

    /// Whether compiled-constraint guards abort the run.
    ///
    /// ```
    /// use aig_mediator::MediatorOptions;
    /// let o = MediatorOptions::builder().check_guards(false).build().unwrap();
    /// assert!(!o.check_guards);
    /// ```
    pub fn check_guards(mut self, check: bool) -> Self {
        self.options.check_guards = check;
        self
    }

    /// Whether the output document is validated against the DTD.
    ///
    /// ```
    /// use aig_mediator::MediatorOptions;
    /// let o = MediatorOptions::builder().validate_output(false).build().unwrap();
    /// assert!(!o.validate_output);
    /// ```
    pub fn validate_output(mut self, validate: bool) -> Self {
        self.options.validate_output = validate;
        self
    }

    /// Whether the runtime integrity defense checks shipped relations.
    ///
    /// ```
    /// use aig_mediator::MediatorOptions;
    /// let o = MediatorOptions::builder().check_integrity(true).build().unwrap();
    /// assert!(o.check_integrity);
    /// ```
    pub fn check_integrity(mut self, check: bool) -> Self {
        self.options.check_integrity = check;
        self
    }

    /// Execute with the per-source worker threads of [`crate::parallel`].
    ///
    /// ```
    /// use aig_mediator::MediatorOptions;
    /// let o = MediatorOptions::builder().parallel_exec(true).build().unwrap();
    /// assert!(o.parallel_exec);
    /// ```
    pub fn parallel_exec(mut self, parallel: bool) -> Self {
        self.options.parallel_exec = parallel;
        self
    }

    /// The simulated source ↔ mediator network.
    ///
    /// ```
    /// use aig_mediator::{MediatorOptions, NetworkModel};
    /// let o = MediatorOptions::builder().network(NetworkModel::mbps(8.0)).build().unwrap();
    /// assert_eq!(o.network.bandwidth_bytes_per_sec, 1_000_000.0);
    /// ```
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.options.network = network;
        self
    }

    /// Task-graph construction knobs (cost model calibration).
    ///
    /// ```
    /// use aig_mediator::{GraphOptions, MediatorOptions};
    /// let mut g = GraphOptions::default();
    /// g.eval_scale = 2.0;
    /// let o = MediatorOptions::builder().graph(g).build().unwrap();
    /// assert_eq!(o.graph.eval_scale, 2.0);
    /// ```
    pub fn graph(mut self, graph: GraphOptions) -> Self {
        self.options.graph = graph;
        self
    }

    /// Deterministic fault injection for source tasks (`None` = no faults).
    ///
    /// ```
    /// use aig_mediator::{FaultConfig, MediatorOptions};
    /// let o = MediatorOptions::builder().faults(Some(FaultConfig::default())).build().unwrap();
    /// assert!(o.faults.is_some());
    /// ```
    pub fn faults(mut self, faults: Option<FaultConfig>) -> Self {
        self.options.faults = faults;
        self
    }

    /// Retry/backoff/timeout policy when faults are injected.
    ///
    /// ```
    /// use aig_mediator::{MediatorOptions, RetryPolicy};
    /// let mut r = RetryPolicy::default();
    /// r.max_attempts = 7;
    /// let o = MediatorOptions::builder().retry(r).build().unwrap();
    /// assert_eq!(o.retry.max_attempts, 7);
    /// ```
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.options.retry = retry;
        self
    }

    /// Static (planned sequences) or dynamic (live ready-queue) scheduling.
    ///
    /// ```
    /// use aig_mediator::{MediatorOptions, Scheduling};
    /// let o = MediatorOptions::builder().scheduling(Scheduling::Dynamic).build().unwrap();
    /// assert_eq!(o.scheduling, Scheduling::Dynamic);
    /// ```
    pub fn scheduling(mut self, scheduling: Scheduling) -> Self {
        self.options.scheduling = scheduling;
        self
    }

    /// Column-liveness pruning at ship boundaries.
    ///
    /// ```
    /// use aig_mediator::MediatorOptions;
    /// let o = MediatorOptions::builder().shipcut(false).build().unwrap();
    /// assert!(!o.shipcut);
    /// ```
    pub fn shipcut(mut self, shipcut: bool) -> Self {
        self.options.shipcut = shipcut;
        self
    }

    /// Worker threads for the partitioned in-process kernels. Zero is
    /// rejected by [`build`](MediatorOptionsBuilder::build) — it is no
    /// longer silently clamped to 1.
    ///
    /// ```
    /// use aig_mediator::{ConfigError, MediatorOptions};
    /// let o = MediatorOptions::builder().threads(4).build().unwrap();
    /// assert_eq!(o.threads, 4);
    /// let err = MediatorOptions::builder().threads(0).build().unwrap_err();
    /// assert_eq!(err, ConfigError::ZeroThreads);
    /// ```
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }

    /// Minimum input rows before a partitioned kernel engages. Zero is
    /// rejected by [`build`](MediatorOptionsBuilder::build).
    ///
    /// ```
    /// use aig_mediator::{ConfigError, MediatorOptions};
    /// let o = MediatorOptions::builder().par_threshold(64).build().unwrap();
    /// assert_eq!(o.par_threshold, 64);
    /// let err = MediatorOptions::builder().par_threshold(0).build().unwrap_err();
    /// assert_eq!(err, ConfigError::ZeroParThreshold);
    /// ```
    pub fn par_threshold(mut self, threshold: usize) -> Self {
        self.options.par_threshold = threshold;
        self
    }

    /// Per-request deadline budget in seconds (`None` = unbounded).
    ///
    /// ```
    /// use aig_mediator::MediatorOptions;
    /// let o = MediatorOptions::builder().deadline_secs(Some(0.5)).build().unwrap();
    /// assert_eq!(o.deadline_secs, Some(0.5));
    /// ```
    pub fn deadline_secs(mut self, budget: Option<f64>) -> Self {
        self.options.deadline_secs = budget;
        self
    }

    /// Chunked shipment (streaming batch execution, [`crate::batch`]).
    /// Requires `shipcut`; the contradiction is rejected at build time.
    ///
    /// ```
    /// use aig_mediator::{ConfigError, MediatorOptions};
    /// let o = MediatorOptions::builder().batching(true).build().unwrap();
    /// assert!(o.batching);
    /// let err = MediatorOptions::builder()
    ///     .batching(true)
    ///     .shipcut(false)
    ///     .build()
    ///     .unwrap_err();
    /// assert_eq!(err, ConfigError::BatchingWithoutShipcut);
    /// ```
    pub fn batching(mut self, batching: bool) -> Self {
        self.options.batching = batching;
        self
    }

    /// Batch size (rows) of the chunked shipment seam. Zero is rejected at
    /// build time even when batching is off, so flipping `batching` on
    /// later cannot surface a latent bad knob.
    ///
    /// ```
    /// use aig_mediator::{ConfigError, MediatorOptions};
    /// let o = MediatorOptions::builder().batch_rows(256).build().unwrap();
    /// assert_eq!(o.batch_rows, 256);
    /// let err = MediatorOptions::builder().batch_rows(0).build().unwrap_err();
    /// assert_eq!(err, ConfigError::ZeroBatchRows);
    /// ```
    pub fn batch_rows(mut self, rows: usize) -> Self {
        self.options.batch_rows = rows;
        self
    }

    /// Incremental re-evaluation on source deltas (served requests reuse
    /// the previous run's snapshot after a delta; see [`crate::delta`]).
    ///
    /// ```
    /// use aig_mediator::MediatorOptions;
    /// let o = MediatorOptions::builder().incremental(true).build().unwrap();
    /// assert!(o.incremental);
    /// ```
    pub fn incremental(mut self, incremental: bool) -> Self {
        self.options.incremental = incremental;
        self
    }

    /// Validates ([`MediatorOptions::validate`]) and returns the assembled
    /// options.
    ///
    /// ```
    /// use aig_mediator::MediatorOptions;
    /// assert!(MediatorOptions::builder().build().is_ok());
    /// ```
    pub fn build(self) -> Result<MediatorOptions, ConfigError> {
        self.options.validate()?;
        Ok(self.options)
    }
}

/// The result of a mediator run. `Clone` so the service's snapshot store
/// can retain the last completed run per (plan, arguments) for delta
/// re-evaluation.
#[derive(Debug, Clone)]
pub struct MediatorRun {
    /// The final document.
    pub tree: XmlTree,
    /// The unfolding depth that sufficed.
    pub depth: usize,
    /// Task and source-query counts of the final graph.
    pub tasks: usize,
    pub source_queries: usize,
    /// Simulated response time without merging (measured query costs).
    pub response_unmerged_secs: f64,
    /// Simulated response time with merging (only meaningful when
    /// `options.merging`; equals unmerged otherwise).
    pub response_merged_secs: f64,
    /// Number of pair merges the optimizer applied.
    pub merges: usize,
    /// Tasks per source name.
    pub per_source: BTreeMap<String, usize>,
    /// Total wall-clock seconds spent executing tasks in-process.
    pub exec_secs: f64,
}

/// Denominator floor of [`MediatorRun::merging_speedup`]: response times
/// below this are treated as "effectively zero" so a degenerate merged time
/// cannot divide the ratio to infinity.
const SPEEDUP_EPSILON_SECS: f64 = 1e-12;

impl MediatorRun {
    /// The ratio the paper's Fig. 10 reports: evaluation time without query
    /// merging over evaluation time with it.
    ///
    /// Degenerate cases are explicit: when both times are effectively zero
    /// (below [`SPEEDUP_EPSILON_SECS`]) there is nothing to speed up and
    /// the ratio is 1.0; when only the merged time is zero the denominator
    /// is clamped to the epsilon instead of silently reporting 1.0, so a
    /// positive unmerged time yields the large-but-finite speedup it
    /// actually represents.
    pub fn merging_speedup(&self) -> f64 {
        if self.response_unmerged_secs < SPEEDUP_EPSILON_SECS
            && self.response_merged_secs < SPEEDUP_EPSILON_SECS
        {
            return 1.0;
        }
        self.response_unmerged_secs / self.response_merged_secs.max(SPEEDUP_EPSILON_SECS)
    }
}

/// Runs the full pipeline on `aig` (an un-specialized AIG: constraints are
/// compiled and multi-source queries decomposed here).
pub fn run(
    aig: &Aig,
    catalog: &Catalog,
    args: &[(&str, Value)],
    options: &MediatorOptions,
) -> Result<MediatorRun, MediatorError> {
    run_with_report(aig, catalog, args, options).map(|(run, _)| run)
}

/// [`run`], additionally producing the full observability record of the run:
/// phase timers, per-task and per-source metrics, the merge decision log,
/// the final plan ordering, and simulated vs. actual timings.
///
/// One-shot wrapper over the prepare/execute split: a fresh
/// [`crate::plan::PreparedPlan`] is built, executed once, and deepened in
/// place while the recursion frontier keeps producing data (§5.5).
pub fn run_with_report(
    aig: &Aig,
    catalog: &Catalog,
    args: &[(&str, Value)],
    options: &MediatorOptions,
) -> Result<(MediatorRun, RunReport), MediatorError> {
    // Validate here too, not just in the builder: hand-assembled options
    // (struct literals, mutated defaults) take the same gate.
    options.validate()?;
    let mut phases = Phases::new();
    let plan_options = options.plan_options();
    let policy = options.exec_policy();

    // Derive the executor options once (not per unfold round); bind the
    // fault model once so every round replays the same fault stream, and
    // carry the evaluation-scale calibration from the plan-side options.
    let mut exec_opts = ExecOptions::new(policy.clone());
    exec_opts.eval_scale = plan_options.graph.eval_scale;
    exec_opts.faults = match &policy.faults {
        Some(cfg) => Some(FaultPlan::new(cfg, catalog)?),
        None => None,
    };

    let mut depth = plan_options.unfold_depth.max(1);
    let mut rounds = 0usize;
    let mut current = None;
    loop {
        rounds += 1;
        let plan = match current.take() {
            None => prepare(
                aig,
                catalog,
                depth,
                &plan_options,
                &policy.network,
                &mut phases,
            )?,
            // Frontier rounds reuse the compiled/decomposed AIG.
            Some(prev) => deepen(&prev, catalog, depth, &mut phases)?,
        };
        match execute_prepared(
            &plan,
            catalog,
            args,
            &policy,
            &exec_opts,
            &mut phases,
            rounds,
            CacheObs::default(),
        )? {
            ExecuteOutcome::Complete(done) => return Ok(*done),
            ExecuteOutcome::FrontierExtend => {
                if depth >= plan_options.max_depth {
                    return Err(MediatorError::RecursionBudget {
                        max_depth: plan_options.max_depth,
                    });
                }
                depth = (depth * 2).min(plan_options.max_depth);
                current = Some(plan);
            }
        }
    }
}

/// Canonical form for comparing documents across evaluation strategies:
/// children of star-production elements are sorted by content (their order
/// is implementation-defined — the paper's pipeline emits them by
/// sort-merge, §5.1).
pub fn canonical(aig: &Aig, tree: &XmlTree) -> XmlTree {
    let star_parents: std::collections::HashSet<String> = aig
        .dtd
        .elements()
        .filter(|&e| matches!(aig.dtd.production(e), aig_xml::ContentModel::Star(_)))
        .map(|e| aig.dtd.name(e).to_string())
        .collect();
    tree.sort_star_children(|tag| star_parents.contains(tag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig_core::eval::evaluate;
    use aig_core::paper::{mini_hospital_catalog, sigma0};
    use aig_core::AigError;

    fn opts() -> MediatorOptions {
        MediatorOptions::default()
    }

    #[test]
    fn mediator_matches_conceptual_evaluation_on_sigma0() {
        let aig = sigma0().unwrap();
        let catalog = mini_hospital_catalog().unwrap();
        for date in ["d1", "d2", "d9"] {
            let conceptual = evaluate(&aig, &catalog, &[("date", Value::str(date))]).unwrap();
            let run = run(&aig, &catalog, &[("date", Value::str(date))], &opts()).unwrap();
            assert_eq!(
                canonical(&aig, &run.tree),
                canonical(&aig, &conceptual.tree),
                "mediator and conceptual evaluation differ on {date}"
            );
        }
    }

    #[test]
    fn mediator_reports_plan_metrics() {
        let aig = sigma0().unwrap();
        let catalog = mini_hospital_catalog().unwrap();
        let run = run(&aig, &catalog, &[("date", Value::str("d1"))], &opts()).unwrap();
        assert!(run.tasks > 10);
        assert!(run.source_queries >= 5, "queries: {}", run.source_queries);
        assert!(run.response_unmerged_secs > 0.0);
        assert!(run.response_merged_secs <= run.response_unmerged_secs);
        assert!(run.depth >= 3);
        assert!(run.per_source.len() >= 5); // four DBs + mediator
    }

    #[test]
    fn frontier_mode_extends_until_data_depth() {
        let aig = sigma0().unwrap();
        let catalog = mini_hospital_catalog().unwrap();
        let options = MediatorOptions::builder().unfold_depth(1).build().unwrap();
        let run = run(&aig, &catalog, &[("date", Value::str("d1"))], &options).unwrap();
        // Data depth is 3 (t1 -> t4 -> t5): depth 1 -> 2 -> 4.
        assert!(run.depth >= 3, "depth {}", run.depth);
        let text = aig_xml::serialize::to_string(&run.tree);
        assert!(text.contains("bloodwork"), "deep treatment missing");
    }

    #[test]
    fn truncate_mode_stops_at_depth() {
        let aig = sigma0().unwrap();
        let catalog = mini_hospital_catalog().unwrap();
        let options = MediatorOptions::builder()
            .unfold_depth(1)
            .cutoff(CutOff::Truncate)
            .build()
            .unwrap();
        let run = run(&aig, &catalog, &[("date", Value::str("d1"))], &options);
        // Truncation drops t4/t5; the inclusion constraint *still holds*
        // (billing covers all), but t4/t5 items disappear because the bill
        // is driven by the collected (truncated) set. The run succeeds with
        // a shallower document.
        let run = run.unwrap();
        assert_eq!(run.depth, 1);
        let text = aig_xml::serialize::to_string(&run.tree);
        assert!(text.contains("surgery"));
        assert!(!text.contains("anesthesia"));
    }

    #[test]
    fn guard_violations_abort_the_mediator_run() {
        // Duplicate billing row for t1: the key is violated.
        let aig = sigma0().unwrap();
        let full = mini_hospital_catalog().unwrap();
        let mut catalog = aig_core::paper::empty_hospital_catalog();
        for db in ["DB1", "DB2", "DB4"] {
            let src = full.source_id(db).unwrap();
            let dst = catalog.source_id(db).unwrap();
            for table in full.source(src).table_names() {
                let rows = full.source(src).table(table).unwrap().rows().to_vec();
                let t = catalog.source_mut(dst).table_mut(table).unwrap();
                for row in rows {
                    t.insert(row).unwrap();
                }
            }
        }
        let dst = catalog.source_id("DB3").unwrap();
        *catalog.source_mut(dst) = aig_relstore::Database::new("DB3");
        let mut billing = aig_relstore::Table::new(aig_relstore::TableSchema::strings(
            "billing",
            &["trId", "price"],
            &[],
        ));
        for (t, p) in [
            ("t1", "100"),
            ("t1", "999"),
            ("t2", "250"),
            ("t3", "80"),
            ("t4", "40"),
            ("t5", "15"),
        ] {
            billing.insert(vec![Value::str(t), Value::str(p)]).unwrap();
        }
        catalog.source_mut(dst).add_table(billing).unwrap();

        let err = run(&aig, &catalog, &[("date", Value::str("d1"))], &opts()).unwrap_err();
        assert!(
            matches!(
                err,
                MediatorError::Aig(AigError::ConstraintViolation { .. })
            ),
            "{err}"
        );
        // With guards disabled the run completes.
        let options = MediatorOptions::builder()
            .check_guards(false)
            .build()
            .unwrap();
        assert!(run_ok(&aig, &catalog, &options));
    }

    fn run_ok(aig: &Aig, catalog: &Catalog, options: &MediatorOptions) -> bool {
        run(aig, catalog, &[("date", Value::str("d1"))], options).is_ok()
    }

    #[test]
    fn merging_is_applied_on_sigma0() {
        let aig = sigma0().unwrap();
        let catalog = mini_hospital_catalog().unwrap();
        let run = run(&aig, &catalog, &[("date", Value::str("d1"))], &opts()).unwrap();
        assert!(run.merges > 0, "σ0 has same-source queries to merge");
        assert!(run.merging_speedup() >= 1.0);
    }

    fn run_with_times(unmerged: f64, merged: f64) -> MediatorRun {
        MediatorRun {
            tree: XmlTree::new("x"),
            depth: 1,
            tasks: 0,
            source_queries: 0,
            response_unmerged_secs: unmerged,
            response_merged_secs: merged,
            merges: 0,
            per_source: BTreeMap::new(),
            exec_secs: 0.0,
        }
    }

    #[test]
    fn merging_speedup_handles_degenerate_times() {
        // Both zero: nothing was sped up.
        assert_eq!(run_with_times(0.0, 0.0).merging_speedup(), 1.0);
        // Positive unmerged with zero merged used to silently report 1.0;
        // it now reports the (finite, epsilon-clamped) ratio it stands for.
        let speedup = run_with_times(2.0, 0.0).merging_speedup();
        assert!(speedup > 1e6, "speedup = {speedup}");
        assert!(speedup.is_finite());
        // The ordinary case is the plain ratio.
        assert!((run_with_times(3.0, 1.5).merging_speedup() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn options_split_round_trips_through_the_facade() {
        let options = MediatorOptions::builder()
            .unfold_depth(2)
            .max_depth(16)
            .merging(false)
            .validate_output(false)
            .scheduling(Scheduling::Dynamic)
            .shipcut(false)
            .threads(4)
            .build()
            .unwrap();
        let rebuilt = MediatorOptions::from_parts(options.plan_options(), options.exec_policy());
        assert_eq!(rebuilt.unfold_depth, 2);
        assert_eq!(rebuilt.max_depth, 16);
        assert!(!rebuilt.merging);
        assert!(!rebuilt.validate_output);
        assert_eq!(rebuilt.scheduling, Scheduling::Dynamic);
        assert_eq!(rebuilt.cutoff, options.cutoff);
        assert!(!rebuilt.shipcut);
        assert_eq!(rebuilt.threads, 4);
    }
}
