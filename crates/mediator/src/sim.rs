//! The simulated network between the mediator and the data sources.
//!
//! Paper §6: "The total evaluation time was computed by simulating the
//! transfer of temporary tables among the distributed data sources, i.e.,
//! the mediator and different databases, using different bandwidths." This
//! module is that simulation: `trans_cost(S1, S2, B)` from §5.2, with data
//! between two non-mediator sources routed *via* the mediator.

use aig_relstore::SourceId;

/// Bandwidth/latency model of the mediator's links to the sources.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Link bandwidth in bytes per second (each source ↔ mediator link).
    pub bandwidth_bytes_per_sec: f64,
    /// Per-transfer latency in seconds (connection setup, framing).
    pub latency_secs: f64,
    /// Per-byte cost of materializing a received input as a temporary table
    /// at the consuming engine (§5.1: "temporary tables may have to be
    /// created and populated with inputs to a query"). Query merging saves
    /// this whenever it internalizes an edge.
    pub temp_load_secs_per_byte: f64,
}

impl NetworkModel {
    /// A model with the given bandwidth in megabits per second. The paper's
    /// headline experiment (Fig. 10) uses 1 Mbps.
    pub fn mbps(megabits: f64) -> NetworkModel {
        NetworkModel {
            bandwidth_bytes_per_sec: megabits * 125_000.0,
            latency_secs: 0.001,
            // ~100 kB/s temp-table population (row-at-a-time inserts through a
            // 2003-era client interface, ~2k rows/s).
            temp_load_secs_per_byte: 1e-5,
        }
    }

    /// An effectively infinite network (for isolating computation costs).
    pub fn infinite() -> NetworkModel {
        NetworkModel {
            bandwidth_bytes_per_sec: f64::INFINITY,
            latency_secs: 0.0,
            temp_load_secs_per_byte: 0.0,
        }
    }

    /// The cost the *consuming engine* pays to materialize `bytes` of
    /// shipped input as a temporary table before a query can use them. The
    /// mediator caches results natively (application memory), so only
    /// source-side consumers pay it.
    pub fn temp_load_cost(&self, consumer: SourceId, bytes: f64) -> f64 {
        if consumer.is_mediator() {
            0.0
        } else {
            bytes * self.temp_load_secs_per_byte
        }
    }

    /// Estimated seconds chunked shipment overlaps away by pipelining:
    /// with `batches` batches, shipment of batch *k* proceeds while the
    /// consumer evaluates batch *k − 1*, hiding the smaller of the two
    /// times on all but the first batch. One batch (or zero) has nothing
    /// to overlap with and saves nothing. An estimate, not a measurement —
    /// on a single CPU the overlap is between simulated wire time and
    /// evaluation time, not between real concurrent work.
    pub fn overlap_savings(&self, ship_secs: f64, eval_secs: f64, batches: u64) -> f64 {
        if batches <= 1 {
            return 0.0;
        }
        ship_secs.min(eval_secs) * (batches as f64 - 1.0) / batches as f64
    }

    /// `trans_cost(S1, S2, B)`: seconds to move `bytes` from `from` to `to`.
    ///
    /// * zero when the endpoints coincide;
    /// * one hop when either endpoint is the mediator;
    /// * two hops (via the mediator) between two data sources, per §5.2:
    ///   "if neither S1 nor S2 refers to the mediator, then the data is
    ///   shipped from S1 to S2 via the mediator".
    pub fn trans_cost(&self, from: SourceId, to: SourceId, bytes: f64) -> f64 {
        if from == to {
            return 0.0;
        }
        let hops = if from.is_mediator() || to.is_mediator() {
            1.0
        } else {
            2.0
        };
        if self.bandwidth_bytes_per_sec.is_infinite() {
            return hops * self.latency_secs;
        }
        hops * (self.latency_secs + bytes / self.bandwidth_bytes_per_sec)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::mbps(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_source_is_free() {
        let net = NetworkModel::mbps(1.0);
        assert_eq!(net.trans_cost(SourceId(1), SourceId(1), 1e6), 0.0);
        assert_eq!(
            net.trans_cost(SourceId::MEDIATOR, SourceId::MEDIATOR, 1e6),
            0.0
        );
    }

    #[test]
    fn source_to_source_goes_via_mediator() {
        let net = NetworkModel::mbps(1.0); // 125 kB/s
        let one_hop = net.trans_cost(SourceId(1), SourceId::MEDIATOR, 125_000.0);
        let two_hop = net.trans_cost(SourceId(1), SourceId(2), 125_000.0);
        assert!((one_hop - 1.001).abs() < 1e-9);
        assert!((two_hop - 2.002).abs() < 1e-9);
    }

    #[test]
    fn higher_bandwidth_is_cheaper() {
        let slow = NetworkModel::mbps(1.0);
        let fast = NetworkModel::mbps(100.0);
        let bytes = 1e6;
        assert!(
            fast.trans_cost(SourceId(1), SourceId::MEDIATOR, bytes)
                < slow.trans_cost(SourceId(1), SourceId::MEDIATOR, bytes)
        );
    }

    #[test]
    fn infinite_network_only_pays_latency() {
        let net = NetworkModel::infinite();
        assert_eq!(net.trans_cost(SourceId(1), SourceId(2), 1e12), 0.0);
    }

    #[test]
    fn overlap_savings_hides_the_smaller_side_on_all_but_one_batch() {
        let net = NetworkModel::mbps(1.0);
        // A single batch (or none) pipelines nothing.
        assert_eq!(net.overlap_savings(3.0, 5.0, 0), 0.0);
        assert_eq!(net.overlap_savings(3.0, 5.0, 1), 0.0);
        // 4 batches hide min(ship, eval) on 3 of the 4.
        assert!((net.overlap_savings(3.0, 5.0, 4) - 2.25).abs() < 1e-12);
        // Symmetric in which side is smaller.
        assert!((net.overlap_savings(5.0, 3.0, 4) - 2.25).abs() < 1e-12);
    }
}
