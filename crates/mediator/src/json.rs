//! A minimal JSON value type with a writer and a parser — just enough for
//! machine-readable run reports ([`crate::obs`]) without external
//! dependencies. Objects keep insertion order so that serialized reports are
//! byte-stable across runs (required by the golden-file tests).

use std::fmt::Write as _;

/// A JSON value. Numbers are `f64` (integers below 2^53 round-trip
/// exactly); objects are ordered key/value lists.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

/// JSON has no NaN/Infinity literals; non-finite numbers become `null`.
fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's Display for f64 is the shortest round-tripping form.
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry the byte offset of the problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err("unterminated string".to_string());
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or("unterminated escape")?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            match code {
                                // High surrogate: combine with a following
                                // `\uDC00..\uDFFF` escape into one scalar;
                                // without one it is lone and becomes U+FFFD.
                                0xD800..=0xDBFF => {
                                    let paired = self
                                        .bytes
                                        .get(self.pos..self.pos + 2)
                                        .map(|b| b == br"\u")
                                        .unwrap_or(false);
                                    let low = if paired {
                                        self.pos += 2;
                                        Some(self.hex4()?)
                                    } else {
                                        None
                                    };
                                    match low {
                                        Some(lo @ 0xDC00..=0xDFFF) => {
                                            let scalar =
                                                0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                            out.push(
                                                char::from_u32(scalar)
                                                    .expect("valid supplementary"),
                                            );
                                        }
                                        Some(other) => {
                                            // Lone high surrogate followed by a
                                            // non-surrogate escape: keep both.
                                            out.push('\u{fffd}');
                                            out.push(char::from_u32(other).unwrap_or('\u{fffd}'));
                                        }
                                        None => out.push('\u{fffd}'),
                                    }
                                }
                                // Lone low surrogate.
                                0xDC00..=0xDFFF => out.push('\u{fffd}'),
                                _ => out.push(char::from_u32(code).unwrap_or('\u{fffd}')),
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => {
                    // Advance one UTF-8 character.
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads four hex digits of a `\u` escape and advances past them.
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or("bad \\u escape")?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_every_value_kind() {
        let value = Json::obj(vec![
            ("null", Json::Null),
            ("flag", Json::Bool(true)),
            ("int", Json::num(42.0)),
            ("float", Json::num(0.125)),
            ("neg", Json::num(-17.5)),
            ("text", Json::str("a \"quoted\"\nline\t\\")),
            (
                "arr",
                Json::Arr(vec![Json::num(1.0), Json::str("x"), Json::Null]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        for text in [value.to_compact(), value.to_pretty()] {
            assert_eq!(parse(&text).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn float_formatting_round_trips() {
        for n in [0.1, 1e-9, 123456.789, 2.0f64.powi(52), 1.0 / 3.0] {
            let text = Json::num(n).to_compact();
            assert_eq!(parse(&text).unwrap().as_f64().unwrap(), n, "{text}");
        }
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn surrogate_pairs_decode_to_one_scalar() {
        // U+1F600 😀 as the UTF-16 surrogate pair D83D DE00.
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::str("\u{1F600}"));
        // U+1D11E 𝄞 mixed with surrounding text and a BMP escape.
        assert_eq!(
            parse("\"a\\u00e9 \\ud834\\udd1e z\"").unwrap(),
            Json::str("a\u{e9} \u{1D11E} z")
        );
    }

    #[test]
    fn lone_surrogates_become_replacement_chars() {
        // Lone high, lone low, and high followed by a non-surrogate escape.
        assert_eq!(parse(r#""\ud83d""#).unwrap(), Json::str("\u{fffd}"));
        assert_eq!(parse(r#""\ude00""#).unwrap(), Json::str("\u{fffd}"));
        assert_eq!(parse(r#""\ud83dx""#).unwrap(), Json::str("\u{fffd}x"));
        assert_eq!(
            parse(r#""\ud83dA""#).unwrap(),
            Json::str("\u{fffd}A"),
            "non-surrogate escape after a lone high surrogate survives"
        );
        // Two high surrogates in a row: both are lone.
        assert_eq!(
            parse(r#""\ud83d\ud83d""#).unwrap(),
            Json::str("\u{fffd}\u{fffd}")
        );
    }

    #[test]
    fn astral_text_round_trips() {
        // The writer emits astral chars as raw UTF-8; parse(write(s)) == s.
        let value = Json::str("emoji 😀 and 𝄞 clef");
        for text in [value.to_compact(), value.to_pretty()] {
            assert_eq!(parse(&text).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let text = r#"{"z": 1, "a": 2, "m": 3}"#;
        let Json::Obj(fields) = parse(text).unwrap() else {
            panic!("not an object");
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }
}
