//! Human-readable renderings of the dependency graph and execution plan —
//! the textual counterpart of the paper's Fig. 6 (specialized AIG graph) and
//! Fig. 7 (dependency graph / execution plan / merging).

use crate::cost::{completion_times, CostGraph, Plan};
use crate::graph::TaskGraph;
use crate::sim::NetworkModel;
use aig_relstore::Catalog;
use std::fmt::Write;

/// Renders the contracted dependency graph: one line per node with its
/// source, evaluation cost, dependencies (with shipped bytes), and the task
/// labels contracted into it.
pub fn render_graph(graph: &CostGraph, tasks: &TaskGraph, catalog: &Catalog) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "dependency graph ({} nodes)", graph.len());
    for (id, node) in graph.nodes.iter().enumerate() {
        let labels: Vec<&str> = node
            .members
            .iter()
            .map(|&m| tasks.tasks[m].label.as_str())
            .collect();
        let deps: Vec<String> = graph.deps[id]
            .iter()
            .map(|(d, bytes)| format!("#{d} ({bytes:.0} B)"))
            .collect();
        let _ = writeln!(
            out,
            "  #{id} @{} eval={:.3}s{} <- [{}]",
            catalog.source(node.source).name(),
            node.eval_secs,
            if node.mergeable { "" } else { " (mediator)" },
            deps.join(", "),
        );
        if !labels.is_empty() {
            let shown = labels.len().min(4);
            let _ = writeln!(
                out,
                "      {}{}",
                labels[..shown].join(", "),
                if labels.len() > shown {
                    format!(" … +{}", labels.len() - shown)
                } else {
                    String::new()
                }
            );
        }
    }
    out
}

/// Renders an execution plan (Fig. 7(b)): per source, the ordered node
/// sequence with completion times under the network model.
pub fn render_plan(
    graph: &CostGraph,
    plan: &Plan,
    net: &NetworkModel,
    catalog: &Catalog,
) -> String {
    let done = completion_times(graph, plan, net);
    let mut out = String::new();
    let mut sources: Vec<_> = plan.per_source.keys().copied().collect();
    sources.sort();
    let _ = writeln!(out, "execution plan");
    for source in sources {
        let seq = &plan.per_source[&source];
        if seq.is_empty() {
            continue;
        }
        let steps: Vec<String> = seq
            .iter()
            .map(|&t| format!("#{t}→{:.2}s", done[t]))
            .collect();
        let _ = writeln!(
            out,
            "  {}: {}",
            catalog.source(source).name(),
            steps.join("  ")
        );
    }
    let makespan = done.iter().copied().fold(0.0f64, f64::max);
    let _ = writeln!(out, "  response time: {makespan:.3}s");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{estimated_costs, CostGraph};
    use crate::graph::{build_graph, GraphOptions};
    use crate::schedule::schedule;
    use crate::unfold::{unfold, CutOff};
    use aig_core::paper::{mini_hospital_catalog, sigma0};
    use aig_core::{compile_constraints, decompose_queries};

    #[test]
    fn renderings_contain_the_expected_structure() {
        let aig = sigma0().unwrap();
        let compiled = compile_constraints(&aig).unwrap();
        let (specialized, _) = decompose_queries(&compiled).unwrap();
        let unfolded = unfold(&specialized, 2, CutOff::Truncate).unwrap();
        let catalog = mini_hospital_catalog().unwrap();
        let tasks = build_graph(&unfolded.aig, &catalog, &GraphOptions::default()).unwrap();
        let costs = estimated_costs(&tasks);
        let cg = CostGraph::from_task_graph(&tasks, &costs).contract_passthrough();
        let net = NetworkModel::mbps(1.0);

        let graph_text = render_graph(&cg, &tasks, &catalog);
        assert!(graph_text.contains("dependency graph"));
        assert!(graph_text.contains("@DB1"), "{graph_text}");
        assert!(
            graph_text.contains("gen[report#0->patient]"),
            "{graph_text}"
        );

        let plan = schedule(&cg, &net);
        let plan_text = render_plan(&cg, &plan, &net, &catalog);
        assert!(plan_text.contains("execution plan"));
        assert!(plan_text.contains("response time:"), "{plan_text}");
        for db in ["DB1", "DB2", "DB3", "DB4", "Mediator"] {
            assert!(plan_text.contains(db), "{db} missing in {plan_text}");
        }
    }
}
