//! Human-readable renderings of the dependency graph and execution plan —
//! the textual counterpart of the paper's Fig. 6 (specialized AIG graph) and
//! Fig. 7 (dependency graph / execution plan / merging).

use crate::cost::{completion_times, CostGraph, Plan};
use crate::graph::TaskGraph;
use crate::obs::RunReport;
use crate::sim::NetworkModel;
use aig_relstore::Catalog;
use std::fmt::Write;

/// Renders the contracted dependency graph: one line per node with its
/// source, evaluation cost, dependencies (with shipped bytes), and the task
/// labels contracted into it.
pub fn render_graph(graph: &CostGraph, tasks: &TaskGraph, catalog: &Catalog) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "dependency graph ({} nodes)", graph.len());
    for (id, node) in graph.nodes.iter().enumerate() {
        let labels: Vec<&str> = node
            .members
            .iter()
            .map(|&m| tasks.tasks[m].label.as_str())
            .collect();
        let deps: Vec<String> = graph.deps[id]
            .iter()
            .map(|(d, bytes)| format!("#{d} ({bytes:.0} B)"))
            .collect();
        let _ = writeln!(
            out,
            "  #{id} @{} eval={:.3}s{} <- [{}]",
            catalog.source(node.source).name(),
            node.eval_secs,
            if node.mergeable { "" } else { " (mediator)" },
            deps.join(", "),
        );
        if !labels.is_empty() {
            let shown = labels.len().min(4);
            let _ = writeln!(
                out,
                "      {}{}",
                labels[..shown].join(", "),
                if labels.len() > shown {
                    format!(" … +{}", labels.len() - shown)
                } else {
                    String::new()
                }
            );
        }
    }
    out
}

/// Renders an execution plan (Fig. 7(b)): per source, the ordered node
/// sequence with completion times under the network model.
pub fn render_plan(
    graph: &CostGraph,
    plan: &Plan,
    net: &NetworkModel,
    catalog: &Catalog,
) -> String {
    let done = completion_times(graph, plan, net);
    let mut out = String::new();
    let mut sources: Vec<_> = plan.per_source.keys().copied().collect();
    sources.sort();
    let _ = writeln!(out, "execution plan");
    for source in sources {
        let seq = &plan.per_source[&source];
        if seq.is_empty() {
            continue;
        }
        let steps: Vec<String> = seq
            .iter()
            .map(|&t| format!("#{t}→{:.2}s", done[t]))
            .collect();
        let _ = writeln!(
            out,
            "  {}: {}",
            catalog.source(source).name(),
            steps.join("  ")
        );
    }
    let makespan = done.iter().copied().fold(0.0f64, f64::max);
    let _ = writeln!(out, "  response time: {makespan:.3}s");
    out
}

/// Renders a [`RunReport`]: phase timers, per-source aggregates, the merge
/// decision log, the final plan, and simulated vs. actual totals.
pub fn render_report(report: &RunReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "run report: depth {} ({} round{}), {} tasks, {}",
        report.depth,
        report.unfold_rounds,
        if report.unfold_rounds == 1 { "" } else { "s" },
        report.tasks.len(),
        if report.parallel_exec {
            "parallel execution"
        } else {
            "sequential execution"
        },
    );
    let _ = writeln!(
        out,
        "phases ({:.3}s total = {:.3}s prepare + {:.3}s execute)",
        report.total_secs, report.prepare_secs, report.execute_secs
    );
    for phase in &report.phases {
        let _ = writeln!(
            out,
            "  {:<20} {:>9.4}s  (x{}, from {:.4}s)",
            phase.name, phase.secs, phase.calls, phase.first_start_secs
        );
    }
    if report.cache.enabled {
        let c = &report.cache;
        let _ = writeln!(
            out,
            "plan cache: {}{}; totals {} hits / {} misses / {} promotions / \
             {} evictions; {} of {} plans resident",
            if c.hit { "hit" } else { "miss" },
            if c.promoted { " (promoted deeper)" } else { "" },
            c.hits,
            c.misses,
            c.promotions,
            c.evictions,
            c.entries,
            c.capacity,
        );
    }
    if report.shipcut.enabled {
        let s = &report.shipcut;
        let pct = if s.shipped_full_bytes > 0.0 {
            100.0 * s.saved_bytes / s.shipped_full_bytes
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "ship-cut: {:.0} of {:.0} shipped bytes ({:.0} saved, {:.1}%); \
             {} task shipments pruned",
            s.shipped_cut_bytes, s.shipped_full_bytes, s.saved_bytes, pct, s.pruned_tasks,
        );
    }
    if report.batching.enabled {
        let b = &report.batching;
        let _ = writeln!(
            out,
            "batching: {} batches of {} rows; peak {} resident shipment rows; \
             est. {:.3}s overlapped by pipelining",
            b.total_batches, b.batch_rows, b.peak_resident_rows, b.overlap_savings_secs,
        );
    }
    let _ = writeln!(out, "sources");
    for source in &report.sources {
        let _ = writeln!(
            out,
            "  {:<10} {:>3} tasks  actual {:.4}s busy  sim {:.3}s busy / {:.3}s idle",
            source.name, source.tasks, source.busy_secs, source.sim_busy_secs, source.sim_idle_secs
        );
    }
    if !report.merge_decisions.is_empty() {
        // Contracted node ids are meaningless on their own — resolve them
        // back to the task labels so the log is self-contained.
        let label_of = |ids: &[usize]| -> String {
            let labels: Vec<&str> = ids
                .iter()
                .map(|&id| {
                    report
                        .tasks
                        .get(id)
                        .map(|t| t.label.as_str())
                        .unwrap_or("?")
                })
                .collect();
            format!("[{}]", labels.join(", "))
        };
        let _ = writeln!(out, "merge decisions");
        for d in &report.merge_decisions {
            let _ = writeln!(
                out,
                "  @{}: merge {} into {}  cost {:.3}s -> {:.3}s",
                d.source,
                label_of(&d.absorbed),
                label_of(&d.kept),
                d.cost_before_secs,
                d.cost_after_secs
            );
        }
    }
    if report.resilience.enabled {
        let r = &report.resilience;
        let _ = writeln!(
            out,
            "resilience (seed {}): {} injected = {} retried + {} timed out + \
             {} failed over + {} surfaced; {} spikes absorbed, {} replans",
            r.seed,
            r.injected,
            r.retried,
            r.timed_out,
            r.failed_over,
            r.surfaced,
            r.absorbed_spikes,
            r.replans,
        );
        for e in &r.events {
            let _ = writeln!(
                out,
                "  task {} ({}) @{} attempt {}: {} -> {}",
                e.task, e.label, e.source, e.attempt, e.kind, e.outcome
            );
        }
    }
    if report.integrity.enabled || report.integrity.injected > 0 {
        let i = &report.integrity;
        let _ = writeln!(
            out,
            "integrity ({}): {} injected = {} masked by retry + {} detected by guard + \
             {} detected by constraint + {} undetected ({})",
            if i.enabled { "checks on" } else { "checks off" },
            i.injected,
            i.masked_by_retry,
            i.detected_by_guard,
            i.detected_by_constraint,
            i.undetected,
            if i.balanced {
                "balanced"
            } else {
                "UNBALANCED: silent corruption"
            },
        );
        for e in &i.events {
            let detail = if e.detail.is_empty() {
                String::new()
            } else {
                format!("/{}", e.detail)
            };
            let constraint = if e.constraint.is_empty() {
                String::new()
            } else {
                format!(" [{}]", e.constraint)
            };
            let _ = writeln!(
                out,
                "  task {} ({}) @{}.{} attempt {}: {}{} -> {}{}",
                e.task,
                e.label,
                e.source,
                e.table,
                e.attempt,
                e.kind,
                detail,
                e.outcome,
                constraint
            );
        }
    }
    if report.server.enabled {
        let s = &report.server;
        let _ = writeln!(
            out,
            "server (seed {}): {} offered = {} admitted + {} rejected \
             ({} queue / {} in-flight / {} tenant); {} admitted = {} completed + \
             {} deadline exceeded + {} degraded + {} failed ({})",
            s.seed,
            s.offered,
            s.admitted,
            s.rejected,
            s.rejected_queue,
            s.rejected_in_flight,
            s.rejected_tenant,
            s.admitted,
            s.completed,
            s.deadline_exceeded,
            s.degraded,
            s.failed,
            if s.balanced {
                "balanced"
            } else {
                "UNBALANCED: silent drop"
            },
        );
        let _ = writeln!(
            out,
            "  breakers: {} trips / {} probes / {} closes; queue high-water {}, \
             in-flight high-water {}",
            s.breaker_trips, s.breaker_probes, s.breaker_closes, s.max_queue_depth, s.max_in_flight,
        );
        let _ = writeln!(
            out,
            "  latency: p50 {:.3}s  p95 {:.3}s  p99 {:.3}s",
            s.p50_secs, s.p95_secs, s.p99_secs,
        );
    }
    if report.scheduler.mode != "static" || !report.scheduler.deviations.is_empty() {
        let s = &report.scheduler;
        let _ = writeln!(
            out,
            "scheduler: {} ({} picks, {} deviated from the planned order)",
            s.mode,
            s.picks,
            s.deviations.len(),
        );
        for d in &s.deviations {
            let _ = writeln!(
                out,
                "  task {} ({}) @{}: planned #{} ran #{} (priority {:.3})",
                d.task, d.label, d.source, d.planned_pos, d.actual_pos, d.priority
            );
        }
    }
    let _ = writeln!(out, "final plan");
    for seq in &report.plan {
        let steps: Vec<String> = seq
            .steps
            .iter()
            .map(|s| format!("#{}→{:.2}s", s.node, s.completion_secs))
            .collect();
        let _ = writeln!(out, "  {}: {}", seq.source, steps.join("  "));
    }
    let _ = writeln!(
        out,
        "simulated response: {:.3}s unmerged, {:.3}s merged ({} merges); \
         actual execution: {:.4}s",
        report.sim_response_unmerged_secs,
        report.sim_response_merged_secs,
        report.merges,
        report.exec_wall_secs,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{estimated_costs, CostGraph};
    use crate::graph::{build_graph, GraphOptions};
    use crate::schedule::schedule;
    use crate::unfold::{unfold, CutOff};
    use aig_core::paper::{mini_hospital_catalog, sigma0};
    use aig_core::{compile_constraints, decompose_queries};

    #[test]
    fn renderings_contain_the_expected_structure() {
        let aig = sigma0().unwrap();
        let compiled = compile_constraints(&aig).unwrap();
        let (specialized, _) = decompose_queries(&compiled).unwrap();
        let unfolded = unfold(&specialized, 2, CutOff::Truncate).unwrap();
        let catalog = mini_hospital_catalog().unwrap();
        let tasks = build_graph(&unfolded.aig, &catalog, &GraphOptions::default()).unwrap();
        let costs = estimated_costs(&tasks);
        let cg = CostGraph::from_task_graph(&tasks, &costs).contract_passthrough();
        let net = NetworkModel::mbps(1.0);

        let graph_text = render_graph(&cg, &tasks, &catalog);
        assert!(graph_text.contains("dependency graph"));
        assert!(graph_text.contains("@DB1"), "{graph_text}");
        assert!(
            graph_text.contains("gen[report#0->patient]"),
            "{graph_text}"
        );

        let plan = schedule(&cg, &net);
        let plan_text = render_plan(&cg, &plan, &net, &catalog);
        assert!(plan_text.contains("execution plan"));
        assert!(plan_text.contains("response time:"), "{plan_text}");
        for db in ["DB1", "DB2", "DB3", "DB4", "Mediator"] {
            assert!(plan_text.contains(db), "{db} missing in {plan_text}");
        }
    }
}
