//! Seeded chaos tests for the fault-injection and recovery layer: a matrix
//! of fault rate × executor × retry policy asserting that recovered runs
//! are **byte-identical** to clean runs, that per-attempt timeouts bound
//! wall-clock time, that a zero-retry policy surfaces the structured error,
//! and that hard outages either fail over to a declared replica (with a
//! `Schedule` re-plan in the parallel executor) or fail naming the lost
//! tasks. Everything is driven by fixed seeds, so these tests are exact,
//! not statistical.

use aig_core::paper::{mini_hospital_catalog, sigma0};
use aig_core::spec::Aig;
use aig_core::{compile_constraints, decompose_queries};
use aig_mediator::exec::{execute_graph, ExecOptions, ExecResult, Scheduling};
use aig_mediator::faults::{FaultConfig, FaultOutcome, FaultPlan, RetryPolicy};
use aig_mediator::graph::{build_graph, GraphOptions, TaskGraph};
use aig_mediator::parallel::execute_graph_parallel;
use aig_mediator::unfold::{unfold, CutOff};
use aig_mediator::{run_with_report, MediatorError, MediatorOptions, NetworkModel};
use aig_relstore::{Catalog, Database, SourceId, Value};
use std::collections::HashMap;
use std::time::Instant;

fn setup(catalog: &Catalog) -> (Aig, TaskGraph) {
    let aig = sigma0().unwrap();
    let compiled = compile_constraints(&aig).unwrap();
    let (specialized, _) = decompose_queries(&compiled).unwrap();
    let unfolded = unfold(&specialized, 3, CutOff::Truncate).unwrap();
    let graph = build_graph(&unfolded.aig, catalog, &GraphOptions::default()).unwrap();
    (unfolded.aig, graph)
}

fn topo_plan(graph: &TaskGraph) -> HashMap<SourceId, Vec<usize>> {
    let mut per_source: HashMap<SourceId, Vec<usize>> = HashMap::new();
    for &id in &graph.topo {
        per_source
            .entry(graph.tasks[id].source)
            .or_default()
            .push(id);
    }
    per_source
}

/// A retry policy with sleeps short enough for tests but real backoff.
fn fast_retry(max_attempts: usize) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        backoff_base_secs: 0.0001,
        backoff_cap_secs: 0.001,
        jitter: 0.5,
        timeout_secs: f64::INFINITY,
    }
}

fn faulted_opts(plan: FaultPlan, retry: RetryPolicy) -> ExecOptions {
    let mut opts = ExecOptions {
        faults: Some(plan),
        ..ExecOptions::default()
    };
    opts.policy.retry = retry;
    opts
}

/// Every output relation of `faulted` equals the clean run's, byte for byte.
fn assert_stores_identical(graph: &TaskGraph, clean: &ExecResult, faulted: &ExecResult) {
    for task in &graph.tasks {
        if let Some(key) = &task.output {
            assert_eq!(
                clean.store.get(key).unwrap(),
                faulted.store.get(key).unwrap(),
                "relation of {} drifted under faults",
                task.label
            );
        }
    }
}

/// The accounting identity: every injected (non-absorbed) fault has exactly
/// one outcome.
fn assert_accounted(result: &ExecResult) -> usize {
    let log = &result.resilience;
    let injected = log.injected();
    let sum = log.count(FaultOutcome::Retried)
        + log.count(FaultOutcome::TimedOut)
        + log.count(FaultOutcome::FailedOver)
        + log.count(FaultOutcome::Surfaced);
    assert_eq!(injected, sum, "fault accounting identity violated");
    injected
}

#[test]
fn chaos_matrix_recovered_runs_are_byte_identical() {
    let catalog = mini_hospital_catalog().unwrap();
    let (aig, graph) = setup(&catalog);
    let args = [("date", Value::str("d1"))];
    let clean = execute_graph(&aig, &catalog, &graph, &args, &ExecOptions::default()).unwrap();
    assert!(clean.resilience.events.is_empty());

    let mut total_injected = 0usize;
    for seed in [1u64, 2, 3] {
        for rate in [0.05f64, 0.2] {
            let cfg = FaultConfig {
                seed,
                transient_rate: rate,
                latency_rate: 0.1,
                latency_secs: 0.0003,
                ..FaultConfig::default()
            };
            let plan = FaultPlan::new(&cfg, &catalog).unwrap();
            let opts = faulted_opts(plan, fast_retry(6));

            let seq = execute_graph(&aig, &catalog, &graph, &args, &opts).unwrap();
            assert_stores_identical(&graph, &clean, &seq);
            total_injected += assert_accounted(&seq);

            let par =
                execute_graph_parallel(&aig, &catalog, &graph, &args, &opts, &topo_plan(&graph))
                    .unwrap();
            assert_stores_identical(&graph, &clean, &par);
            let par_injected = assert_accounted(&par);
            // The decision function is pure, so both executors see the very
            // same fault stream.
            assert_eq!(par_injected, seq.resilience.injected(), "seed {seed}");
            total_injected += par_injected;
        }
    }
    assert!(total_injected > 0, "the matrix never injected a fault");
}

/// The chaos matrix again, with the partitioned parallel kernels and
/// ship-cut pruning switched on: recovered runs must still be byte-identical
/// to the clean sequential run. (CI also runs this as the `--threads` smoke.)
#[test]
fn chaos_matrix_is_byte_identical_with_threads_and_shipcut() {
    let catalog = mini_hospital_catalog().unwrap();
    let (aig, graph) = setup(&catalog);
    let args = [("date", Value::str("d1"))];
    let clean = execute_graph(&aig, &catalog, &graph, &args, &ExecOptions::default()).unwrap();
    let shipcut = std::sync::Arc::new(aig_mediator::ShipCut::analyze(&aig, &graph));

    for seed in [1u64, 3] {
        let cfg = FaultConfig {
            seed,
            transient_rate: 0.2,
            latency_rate: 0.1,
            latency_secs: 0.0003,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(&cfg, &catalog).unwrap();
        let mut opts = faulted_opts(plan, fast_retry(6)).with_threads(4);
        opts.shipcut = Some(shipcut.clone());

        let seq = execute_graph(&aig, &catalog, &graph, &args, &opts).unwrap();
        assert_stores_identical(&graph, &clean, &seq);
        assert_accounted(&seq);

        for scheduling in [Scheduling::Static, Scheduling::Dynamic] {
            let opts = opts.clone().with_scheduling(scheduling);
            let par =
                execute_graph_parallel(&aig, &catalog, &graph, &args, &opts, &topo_plan(&graph))
                    .unwrap();
            assert_stores_identical(&graph, &clean, &par);
            assert_accounted(&par);
        }
    }
}

#[test]
fn timeouts_bound_wall_clock() {
    let catalog = mini_hospital_catalog().unwrap();
    let (aig, graph) = setup(&catalog);
    let args = [("date", Value::str("d1"))];
    let clean = execute_graph(&aig, &catalog, &graph, &args, &ExecOptions::default()).unwrap();

    // Spikes of ~30 s would hang the run for minutes; the 20 ms per-attempt
    // timeout must cut every one of them short.
    let cfg = FaultConfig {
        seed: 5,
        transient_rate: 0.0,
        latency_rate: 0.3,
        latency_secs: 30.0,
        ..FaultConfig::default()
    };
    let plan = FaultPlan::new(&cfg, &catalog).unwrap();
    let retry = RetryPolicy {
        timeout_secs: 0.02,
        ..fast_retry(8)
    };
    let start = Instant::now();
    let seq = execute_graph(&aig, &catalog, &graph, &args, &faulted_opts(plan, retry)).unwrap();
    let elapsed = start.elapsed().as_secs_f64();
    assert_stores_identical(&graph, &clean, &seq);
    assert_accounted(&seq);
    let timed_out = seq.resilience.count(FaultOutcome::TimedOut);
    assert!(timed_out > 0, "no spike hit the timeout");
    assert!(
        elapsed < 5.0,
        "timeouts failed to bound wall-clock: {elapsed:.1}s for {timed_out} timeouts"
    );
    // Injected stalls never exceed the timeout.
    for event in &seq.resilience.events {
        assert!(event.stall_secs <= 0.02 + 1e-9, "{event:?}");
    }
}

#[test]
fn zero_retry_policy_surfaces_structured_error() {
    let catalog = mini_hospital_catalog().unwrap();
    let (aig, graph) = setup(&catalog);
    let args = [("date", Value::str("d1"))];
    let cfg = FaultConfig {
        seed: 9,
        transient_rate: 0.5,
        ..FaultConfig::default()
    };
    let plan = FaultPlan::new(&cfg, &catalog).unwrap();
    let opts = faulted_opts(plan, RetryPolicy::none());

    let err = execute_graph(&aig, &catalog, &graph, &args, &opts).unwrap_err();
    assert!(
        matches!(&err, MediatorError::SourceFault { attempts: 1, .. }),
        "{err}"
    );
    let err = execute_graph_parallel(&aig, &catalog, &graph, &args, &opts, &topo_plan(&graph))
        .unwrap_err();
    assert!(
        matches!(&err, MediatorError::SourceFault { attempts: 1, .. }),
        "{err}"
    );
}

/// The mini hospital catalog with `DB3R` added as a byte-identical replica
/// of `DB3`, declared as its failover target.
fn catalog_with_replica() -> Catalog {
    catalog_with_replica_of("DB3")
}

/// The mini hospital catalog with a byte-identical replica of `name` added
/// and declared as its failover target.
fn catalog_with_replica_of(name: &str) -> Catalog {
    let mut catalog = mini_hospital_catalog().unwrap();
    let primary = catalog.source_id(name).unwrap();
    let mut replica_db = Database::new(format!("{name}R"));
    for table in catalog.source(primary).tables() {
        replica_db.add_table(table.clone()).unwrap();
    }
    let replica = catalog.add_source(replica_db).unwrap();
    catalog.declare_replica(primary, replica).unwrap();
    catalog
}

#[test]
fn outage_with_replica_fails_over_and_replans() {
    let catalog = catalog_with_replica();
    let (aig, graph) = setup(&catalog);
    let args = [("date", Value::str("d1"))];
    let clean = execute_graph(&aig, &catalog, &graph, &args, &ExecOptions::default()).unwrap();
    let db3_tasks = graph
        .tasks
        .iter()
        .filter(|t| t.source == catalog.source_id("DB3").unwrap())
        .count();
    assert!(db3_tasks > 0, "fixture has no DB3 tasks");

    let cfg = FaultConfig {
        seed: 4,
        outages: vec!["DB3".to_string()],
        ..FaultConfig::default()
    };
    let plan = FaultPlan::new(&cfg, &catalog).unwrap();
    let opts = faulted_opts(plan, fast_retry(3));

    let seq = execute_graph(&aig, &catalog, &graph, &args, &opts).unwrap();
    assert_stores_identical(&graph, &clean, &seq);
    assert_accounted(&seq);
    assert_eq!(
        seq.resilience.count(FaultOutcome::FailedOver),
        db3_tasks,
        "every DB3 task re-ran at the replica"
    );

    let par =
        execute_graph_parallel(&aig, &catalog, &graph, &args, &opts, &topo_plan(&graph)).unwrap();
    assert_stores_identical(&graph, &clean, &par);
    assert_accounted(&par);
    assert!(
        par.resilience.count(FaultOutcome::FailedOver) > 0,
        "no task failed over"
    );
    assert!(
        par.resilience.replans >= 1,
        "the outage must re-run Schedule on the surviving subgraph"
    );
}

#[test]
fn mid_run_outage_fails_over_in_every_executor() {
    let catalog = catalog_with_replica_of("DB4");
    let (aig, graph) = setup(&catalog);
    let args = [("date", Value::str("d1"))];
    let clean = execute_graph(&aig, &catalog, &graph, &args, &ExecOptions::default()).unwrap();
    let db4 = catalog.source_id("DB4").unwrap();
    let db4_tasks = graph.tasks.iter().filter(|t| t.source == db4).count();
    assert!(db4_tasks >= 2, "need at least two DB4 tasks to die mid-run");

    // DB4 completes exactly one task, then goes hard-down; the rest of its
    // work must fail over to the replica in every executor.
    let cfg = FaultConfig {
        seed: 7,
        dies_after: vec![("DB4".to_string(), 1)],
        ..FaultConfig::default()
    };
    let fault_plan = FaultPlan::new(&cfg, &catalog).unwrap();

    let seq = execute_graph(
        &aig,
        &catalog,
        &graph,
        &args,
        &faulted_opts(fault_plan.clone(), fast_retry(3)),
    )
    .unwrap();
    assert_stores_identical(&graph, &clean, &seq);
    assert_accounted(&seq);
    assert_eq!(
        seq.resilience.count(FaultOutcome::FailedOver),
        db4_tasks - 1,
        "all but the completed task re-ran at the replica"
    );
    assert_eq!(seq.resilience.replans, 1);

    for scheduling in [Scheduling::Static, Scheduling::Dynamic] {
        let opts = faulted_opts(fault_plan.clone(), fast_retry(3)).with_scheduling(scheduling);
        let par = execute_graph_parallel(&aig, &catalog, &graph, &args, &opts, &topo_plan(&graph))
            .unwrap();
        assert_stores_identical(&graph, &clean, &par);
        assert_accounted(&par);
        assert!(
            par.resilience.count(FaultOutcome::FailedOver) > 0,
            "{scheduling:?}: no task failed over"
        );
        assert_eq!(
            par.resilience.replans, 1,
            "{scheduling:?}: the mid-run death must re-run Schedule once"
        );
        assert_eq!(
            par.sched.dynamic,
            scheduling == Scheduling::Dynamic,
            "{scheduling:?}"
        );
    }
}

#[test]
fn outage_without_replica_names_the_lost_tasks() {
    let catalog = mini_hospital_catalog().unwrap();
    let (aig, graph) = setup(&catalog);
    let args = [("date", Value::str("d1"))];
    let cfg = FaultConfig {
        seed: 4,
        outages: vec!["DB3".to_string()],
        ..FaultConfig::default()
    };
    let plan = FaultPlan::new(&cfg, &catalog).unwrap();
    let opts = faulted_opts(plan, fast_retry(3));

    for err in [
        execute_graph(&aig, &catalog, &graph, &args, &opts).unwrap_err(),
        execute_graph_parallel(&aig, &catalog, &graph, &args, &opts, &topo_plan(&graph))
            .unwrap_err(),
    ] {
        let MediatorError::SourceUnavailable { source, lost_tasks } = &err else {
            panic!("expected SourceUnavailable, got {err}");
        };
        assert_eq!(source, "DB3");
        assert!(!lost_tasks.is_empty(), "lost tasks must be named");
        for label in lost_tasks {
            assert!(
                graph.tasks.iter().any(|t| &t.label == label),
                "unknown lost task {label}"
            );
        }
    }
}

#[test]
fn pipeline_reports_resilience_and_preserves_the_document() {
    let catalog = mini_hospital_catalog().unwrap();
    let aig = sigma0().unwrap();
    let args = [("date", Value::str("d1"))];
    let mut options = MediatorOptions {
        unfold_depth: 3,
        max_depth: 3,
        cutoff: CutOff::Truncate,
        network: NetworkModel::mbps(1.0),
        ..MediatorOptions::default()
    };
    options.graph.eval_scale = 0.0;
    options.graph.cost_model.per_query_overhead_secs = 1.0;
    let (clean_run, clean_report) = run_with_report(&aig, &catalog, &args, &options).unwrap();
    assert!(!clean_report.resilience.enabled);
    assert_eq!(clean_report.resilience.injected, 0);
    assert_eq!(clean_report.schema_version, aig_mediator::SCHEMA_VERSION);

    for parallel_exec in [false, true] {
        let mut faulted = options.clone();
        faulted.parallel_exec = parallel_exec;
        faulted.faults = Some(FaultConfig {
            seed: 11,
            transient_rate: 0.2,
            latency_rate: 0.1,
            latency_secs: 0.0003,
            ..FaultConfig::default()
        });
        faulted.retry = fast_retry(6);
        let (run, report) = run_with_report(&aig, &catalog, &args, &faulted).unwrap();
        assert_eq!(
            clean_run.tree, run.tree,
            "faulted document drifted (parallel={parallel_exec})"
        );
        let r = &report.resilience;
        assert!(r.enabled);
        assert_eq!(r.seed, 11);
        assert!(
            r.injected > 0,
            "no fault injected (parallel={parallel_exec})"
        );
        assert_eq!(
            r.injected,
            r.retried + r.timed_out + r.failed_over + r.surfaced,
            "report accounting identity violated"
        );
        // Events arrive sorted by (task, attempt).
        for pair in r.events.windows(2) {
            assert!(
                (pair[0].task, pair[0].attempt) <= (pair[1].task, pair[1].attempt),
                "events out of canonical order"
            );
        }
        // The JSON serialization carries the section.
        let json = report.to_json().to_pretty();
        assert!(json.contains("\"resilience\""));
        assert!(json.contains(&format!(
            "\"schema_version\": {}",
            aig_mediator::SCHEMA_VERSION
        )));
        // The seed is emitted losslessly as a decimal string.
        assert!(json.contains("\"seed\": \"11\""));
    }
}
