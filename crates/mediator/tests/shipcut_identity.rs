//! Byte-identity property suite for the ship-cut optimization, the
//! partitioned parallel kernels, and the columnar interned storage: across
//! seeded datagen catalogs, the matrix {pruning on/off} × {1, N threads} ×
//! {Static, Dynamic scheduling} × {faults on/off} must produce canonical
//! documents and relation stores **byte-identical** to the sequential,
//! unpruned baseline — and in every cell the column-major store must equal
//! its row-major reconstruction (materialize rows, re-intern, compare).
//! Ship-cut is a measurement-time optimization (what crosses the wire),
//! never a semantic one; the parallel kernels partition work but merge
//! deterministically; interning is canonical, so the columnar image carries
//! exactly the row-major content.

use aig_core::paper::sigma0;
use aig_core::spec::Aig;
use aig_core::{compile_constraints, decompose_queries};
use aig_mediator::exec::{execute_graph, ExecOptions, ExecResult, Scheduling};
use aig_mediator::faults::{FaultConfig, FaultPlan, RetryPolicy};
use aig_mediator::graph::{build_graph, GraphOptions, TaskGraph};
use aig_mediator::parallel::execute_graph_parallel;
use aig_mediator::tagging::tag_document;
use aig_mediator::unfold::{unfold, CutOff};
use aig_mediator::ShipCut;
use aig_prng::{Rng, SeedableRng, StdRng};
use aig_relstore::{Catalog, SourceId, Value};
use aig_xml::XmlTree;
use std::collections::HashMap;
use std::sync::Arc;

struct Fixture {
    aig: Aig,
    graph: TaskGraph,
    catalog: Catalog,
    date: String,
}

fn fixture(catalog: Catalog, date: String) -> Fixture {
    let aig = sigma0().unwrap();
    let compiled = compile_constraints(&aig).unwrap();
    let (specialized, _) = decompose_queries(&compiled).unwrap();
    let unfolded = unfold(&specialized, 3, CutOff::Truncate).unwrap();
    let graph = build_graph(&unfolded.aig, &catalog, &GraphOptions::default()).unwrap();
    Fixture {
        aig: unfolded.aig,
        graph,
        catalog,
        date,
    }
}

fn tiny_fixture(seed: u64) -> Fixture {
    let data = aig_datagen::HospitalConfig::tiny(seed).generate().unwrap();
    fixture(data.catalog, data.dates[0].clone())
}

fn topo_plan(graph: &TaskGraph) -> HashMap<SourceId, Vec<usize>> {
    let mut per_source: HashMap<SourceId, Vec<usize>> = HashMap::new();
    for &id in &graph.topo {
        per_source
            .entry(graph.tasks[id].source)
            .or_default()
            .push(id);
    }
    per_source
}

/// One cell of the matrix: executor × options, returning (store, document).
fn run_cell(fx: &Fixture, opts: &ExecOptions, parallel: bool) -> (ExecResult, XmlTree) {
    let args = [("date", Value::str(&fx.date))];
    let result = if parallel {
        execute_graph_parallel(
            &fx.aig,
            &fx.catalog,
            &fx.graph,
            &args,
            opts,
            &topo_plan(&fx.graph),
        )
        .unwrap()
    } else {
        execute_graph(&fx.aig, &fx.catalog, &fx.graph, &args, opts).unwrap()
    };
    let tree = tag_document(&fx.aig, &fx.graph, &result.store).unwrap();
    (result, tree)
}

fn assert_identical(
    fx: &Fixture,
    base: &(ExecResult, XmlTree),
    cell: &(ExecResult, XmlTree),
    what: &str,
) {
    assert_eq!(base.1, cell.1, "document drifted: {what}");
    for task in &fx.graph.tasks {
        if let Some(key) = &task.output {
            let rel = cell.0.store.get(key).unwrap();
            assert_eq!(
                base.0.store.get(key).unwrap(),
                rel,
                "relation of {} drifted: {what}",
                task.label
            );
            // Columnar vs row-major: materializing every row and
            // re-interning must reproduce the column-major image exactly
            // (same content, same order, same wire accounting).
            let row_major =
                aig_relstore::Relation::new(rel.columns().to_vec(), rel.rows_vec()).unwrap();
            assert_eq!(
                *rel, row_major,
                "columnar image of {} diverged from its row-major reconstruction: {what}",
                task.label
            );
            assert_eq!(
                rel.wire_bytes(),
                row_major.wire_bytes(),
                "wire accounting of {} diverged across layouts: {what}",
                task.label
            );
        }
    }
}

#[test]
fn matrix_is_byte_identical_to_the_sequential_unpruned_baseline() {
    let mut rng = StdRng::seed_from_u64(0x5417);
    for _ in 0..2 {
        let seed = rng.gen_range(0u64..1 << 48);
        let fx = tiny_fixture(seed);
        let shipcut = Arc::new(ShipCut::analyze(&fx.aig, &fx.graph));
        let baseline = run_cell(&fx, &ExecOptions::default(), false);

        for prune in [false, true] {
            for threads in [1usize, 4] {
                for faults in [false, true] {
                    let mut opts = ExecOptions::default().with_threads(threads);
                    opts.shipcut = prune.then(|| shipcut.clone());
                    if faults {
                        let cfg = FaultConfig {
                            seed: rng.gen_range(1u64..1 << 32),
                            transient_rate: 0.15,
                            latency_rate: 0.1,
                            latency_secs: 0.0002,
                            ..FaultConfig::default()
                        };
                        opts.faults = Some(FaultPlan::new(&cfg, &fx.catalog).unwrap());
                        opts.policy.retry = RetryPolicy {
                            max_attempts: 6,
                            backoff_base_secs: 0.0001,
                            backoff_cap_secs: 0.001,
                            jitter: 0.5,
                            timeout_secs: f64::INFINITY,
                        };
                    }
                    let what =
                        format!("seed {seed} prune={prune} threads={threads} faults={faults}");
                    let seq = run_cell(&fx, &opts, false);
                    assert_identical(&fx, &baseline, &seq, &format!("{what} sequential"));
                    for scheduling in [Scheduling::Static, Scheduling::Dynamic] {
                        let opts = opts.clone().with_scheduling(scheduling);
                        let par = run_cell(&fx, &opts, true);
                        assert_identical(
                            &fx,
                            &baseline,
                            &par,
                            &format!("{what} parallel {scheduling:?}"),
                        );
                    }
                }
            }
        }
    }
}

/// The satellite regression for the Gen canonical sort: on a relation large
/// enough to engage the partitioned sort kernel (> its 2048-row threshold),
/// the by-reference comparator at any thread count must reproduce the
/// ordering of the original clone-a-key-per-comparison sort exactly —
/// including tie-breaks, since the parallel merge is stable.
#[test]
fn large_relation_canonical_sort_is_identical_across_threads() {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let owners: Vec<Value> = (0..64).map(|i| Value::str(format!("o{i}"))).collect();
    let mut rows: Vec<Vec<Value>> = (0..6000)
        .map(|i| {
            vec![
                rng.pick(&owners).clone(),
                Value::str(format!("r{i}")), // unique: exposes unstable merges
                Value::str(format!("p{}", rng.gen_range(0u64..8))),
                Value::str(format!("q{}", rng.gen_range(0u64..4))),
            ]
        })
        .collect();

    // The pre-fix ordering: clone the key per comparison (the allocation this
    // PR removes), ignoring column 1 exactly as the Gen kernel does.
    let mut expected = rows.clone();
    #[allow(clippy::redundant_clone)]
    expected.sort_by(|a, b| (a[0].clone(), &a[2..]).cmp(&(b[0].clone(), &b[2..])));

    for threads in [1usize, 2, 4] {
        let mut sorted = rows.clone();
        aig_relstore::par::stable_sort_rows(&mut sorted, threads, |a, b| {
            a[0].cmp(&b[0]).then_with(|| a[2..].cmp(&b[2..]))
        });
        assert_eq!(sorted, expected, "threads={threads}");
    }

    // Sanity: the generator actually produced ties on the sort key, so the
    // stability claim was exercised.
    rows.sort_by(|a, b| a[0].cmp(&b[0]).then_with(|| a[2..].cmp(&b[2..])));
    let ties = rows
        .windows(2)
        .filter(|w| w[0][0] == w[1][0] && w[0][2..] == w[1][2..])
        .count();
    assert!(ties > 100, "only {ties} ties; fixture too weak");
}

/// Liveness never drops bookkeeping or key-constraint columns: every task
/// output that carries `__owner` / ordinal columns keeps them live, and
/// guard inputs (which enforce key constraints) stay fully live. This is the
/// end-to-end companion of the unit tests in `src/shipcut.rs`, on a datagen
/// catalog rather than the paper's mini fixture.
#[test]
fn liveness_keeps_bookkeeping_and_guard_columns_on_datagen_catalogs() {
    let fx = tiny_fixture(77);
    let cut = ShipCut::analyze(&fx.aig, &fx.graph);
    let args = [("date", Value::str(&fx.date))];
    let result = execute_graph(
        &fx.aig,
        &fx.catalog,
        &fx.graph,
        &args,
        &ExecOptions::default(),
    )
    .unwrap();
    for (id, task) in fx.graph.tasks.iter().enumerate() {
        let Some(key) = &task.output else { continue };
        let rel = result.store.get(key).unwrap();
        let live = cut.live_columns(id, rel);
        for (pos, name) in rel.columns().iter().enumerate() {
            if aig_mediator::shipcut::is_bookkeeping(name) {
                assert!(
                    live.contains(&pos),
                    "task {} dropped bookkeeping column {name}",
                    task.label
                );
            }
        }
    }
}
