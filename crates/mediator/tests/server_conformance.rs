//! Conformance suite for the overload-resilient server — the contract from
//! the top of `src/server.rs`:
//!
//! (a) Every offered request terminates with exactly one structured
//!     outcome, and both ledger identities balance, across the full
//!     {executor} x {threads} x {retry policy} matrix under chaos.
//! (b) Admission control rejects with the correct scope (`queue`,
//!     `in_flight`, `tenant`) and rejections cost zero latency.
//! (c) Deadlines fail fast in the queue (no execution spent), dispatch is
//!     earliest-deadline-first, and late completions are classified.
//! (d) Circuit breakers trip after consecutive source failures, degrade
//!     requests while open, probe half-open after the cooldown, and close
//!     on a clean probe.
//! (e) Clean admitted completions are byte-identical to direct
//!     `Mediator::request` documents.

use aig_core::paper::{mini_hospital_catalog, sigma0};
use aig_mediator::faults::FaultConfig;
use aig_mediator::{
    canonical, Arrival, Disposition, MediatorError, MediatorOptions, MediatorServer, NetworkModel,
    RetryPolicy, ServerConfig, ServerRun,
};
use aig_relstore::Value;
use aig_xml::XmlTree;

/// Options whose simulated (logical-clock) costs do not depend on
/// wall-clock measurements: every source query costs exactly the overhead.
fn det_options(parallel: bool, threads: usize, retry: RetryPolicy) -> MediatorOptions {
    let mut options = MediatorOptions {
        unfold_depth: 3,
        max_depth: 3,
        cutoff: aig_mediator::CutOff::Truncate,
        network: NetworkModel::mbps(100.0),
        parallel_exec: parallel,
        threads,
        retry,
        ..MediatorOptions::default()
    };
    options.graph.eval_scale = 0.0;
    options.graph.cost_model.per_query_overhead_secs = 0.01;
    options
}

fn fast_retry(max_attempts: usize) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        backoff_base_secs: 0.0001,
        backoff_cap_secs: 0.001,
        jitter: 0.5,
        timeout_secs: f64::INFINITY,
    }
}

fn arrival(tenant: &str, at_secs: f64) -> Arrival {
    Arrival {
        tenant: tenant.to_string(),
        at_secs,
        deadline_secs: None,
        args: vec![("date".to_string(), Value::str("d1"))],
        outage_sources: Vec::new(),
    }
}

/// The canonical document of a direct (unserved) request under the given
/// options with chaos stripped — the byte-identity reference for clean
/// completions.
fn direct_document(options: &MediatorOptions) -> XmlTree {
    let aig = sigma0().unwrap();
    let args = [("date", Value::str("d1"))];
    let mut options = options.clone();
    options.faults = None;
    let mediator = aig_mediator::Mediator::new(mini_hospital_catalog().unwrap(), &options).unwrap();
    let (run, _) = mediator.request(&aig, &args).unwrap();
    canonical(&aig, &run.tree)
}

/// The shared invariants of (a): one outcome per offered arrival, ledger
/// balance, and documents exactly on completed/degraded outcomes.
fn assert_conformant(run: &ServerRun, offered: usize, context: &str) {
    assert_eq!(run.outcomes.len(), offered, "{context}");
    for (i, outcome) in run.outcomes.iter().enumerate() {
        assert_eq!(outcome.index, i, "{context}: outcomes in arrival order");
        assert!(
            outcome.latency_secs >= 0.0 && outcome.latency_secs.is_finite(),
            "{context}: latency of {i}"
        );
        let has_doc = outcome.document.is_some();
        match &outcome.disposition {
            Disposition::Completed | Disposition::Degraded { .. } => {
                assert!(
                    has_doc,
                    "{context}: outcome {i} completed without a document"
                )
            }
            _ => assert!(!has_doc, "{context}: outcome {i} failed with a document"),
        }
        if let Disposition::Degraded { skipped } = &outcome.disposition {
            assert!(
                !skipped.is_empty(),
                "{context}: degraded {i} names no subtree"
            );
        }
        if matches!(outcome.disposition, Disposition::Rejected(_)) {
            assert_eq!(
                outcome.latency_secs, 0.0,
                "{context}: rejection {i} cost time"
            );
        }
    }
    let obs = &run.obs;
    assert!(obs.balanced, "{context}: ledger unbalanced: {obs:?}");
    assert_eq!(obs.offered, offered as u64, "{context}");
    assert_eq!(obs.offered, obs.admitted + obs.rejected, "{context}");
    assert_eq!(
        obs.admitted,
        obs.completed + obs.deadline_exceeded + obs.degraded + obs.failed,
        "{context}"
    );
    assert_eq!(
        obs.rejected,
        obs.rejected_queue + obs.rejected_in_flight + obs.rejected_tenant,
        "{context}"
    );
    // The outcome list agrees bucket-by-bucket with the ledger.
    for (tag, expect) in [
        ("completed", obs.completed),
        ("rejected", obs.rejected),
        ("deadline_exceeded", obs.deadline_exceeded),
        ("degraded", obs.degraded),
        ("failed", obs.failed),
    ] {
        let count = run
            .outcomes
            .iter()
            .filter(|o| o.disposition.tag() == tag)
            .count() as u64;
        assert_eq!(count, expect, "{context}: ledger bucket {tag}");
    }
    assert!(
        obs.p50_secs <= obs.p95_secs && obs.p95_secs <= obs.p99_secs,
        "{context}"
    );
    assert!(
        run.report.server.enabled && run.report.server == *obs,
        "{context}"
    );
}

/// (a) The chaos matrix: every executor/thread/retry combination, under
/// transient faults, latency spikes, outage storms, mixed tenants and
/// mixed deadlines, terminates every offered request exactly once with a
/// balanced ledger.
#[test]
fn conformance_matrix_under_chaos() {
    let aig = sigma0().unwrap();
    for parallel in [false, true] {
        for threads in [1, 3] {
            if !parallel && threads != 1 {
                continue;
            }
            for (retry_name, retry) in [("none", RetryPolicy::none()), ("fast", fast_retry(3))] {
                let context = format!(
                    "{} x {threads} threads x retry {retry_name}",
                    if parallel { "parallel" } else { "sequential" },
                );
                let mut options = det_options(parallel, threads, retry);
                options.faults = Some(FaultConfig {
                    seed: 29,
                    transient_rate: 0.15,
                    latency_rate: 0.1,
                    latency_secs: 0.0005,
                    ..FaultConfig::default()
                });
                let server = MediatorServer::new(
                    mini_hospital_catalog().unwrap(),
                    &options,
                    ServerConfig {
                        seed: 7,
                        max_queue: 6,
                        max_in_flight: 2,
                        tenant_quota: 5,
                        breaker_threshold: 2,
                        breaker_cooldown_secs: 3.0,
                        ..ServerConfig::default()
                    },
                )
                .unwrap();
                let clean = direct_document(&options);
                let mut arrivals = Vec::new();
                for i in 0..24usize {
                    let mut a = arrival(["acme", "globex", "initech"][i % 3], 0.3 * i as f64);
                    if i % 4 == 0 {
                        a.deadline_secs = Some(120.0);
                    }
                    if i % 5 == 0 {
                        // Storm: DB3 (no replica in this catalog) is down.
                        a.outage_sources = vec!["DB3".to_string()];
                    }
                    arrivals.push(a);
                }
                let run = server.run(&aig, &arrivals);
                assert_conformant(&run, arrivals.len(), &context);
                // Chaos actually engaged: the storms produce failures or
                // degraded service, never silence.
                assert!(
                    run.obs.failed + run.obs.degraded > 0,
                    "{context}: storms left no trace: {:?}",
                    run.obs
                );
                // Clean completions are byte-identical to direct requests
                // even under concurrent chaos (fault recovery never changes
                // bytes; only full-data completions claim `Completed`).
                let mut completed = 0;
                for outcome in &run.outcomes {
                    if matches!(outcome.disposition, Disposition::Completed) {
                        assert_eq!(
                            canonical(&aig, outcome.document.as_ref().unwrap()),
                            clean,
                            "{context}: completed document of {} differs",
                            outcome.index
                        );
                        completed += 1;
                    }
                }
                // Without retries a 15% per-attempt transient rate fails
                // essentially every request; only the retrying config is
                // expected to mask its way to clean completions.
                if retry_name == "fast" {
                    assert!(completed > 0, "{context}: nothing completed cleanly");
                } else {
                    assert!(run.obs.failed > 0, "{context}: {:?}", run.obs);
                }
            }
        }
    }
}

/// (b) Each admission scope rejects with its own structured error.
#[test]
fn admission_rejects_with_the_right_scope() {
    let aig = sigma0().unwrap();
    let burst =
        |tenants: &[&str]| -> Vec<Arrival> { tenants.iter().map(|t| arrival(t, 0.0)).collect() };

    // Queue overflow: 1 slot + 2 queue places, 6 distinct tenants at once.
    let server = MediatorServer::new(
        mini_hospital_catalog().unwrap(),
        &det_options(false, 1, RetryPolicy::none()),
        ServerConfig {
            max_queue: 2,
            max_in_flight: 1,
            tenant_quota: 100,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let run = server.run(&aig, &burst(&["a", "b", "c", "d", "e", "f"]));
    assert_conformant(&run, 6, "queue overflow");
    assert_eq!(run.obs.rejected_queue, 3);
    assert_eq!(run.obs.completed, 3);
    for outcome in &run.outcomes[3..] {
        let Disposition::Rejected(MediatorError::Overloaded { scope, .. }) = &outcome.disposition
        else {
            panic!("expected Overloaded, got {:?}", outcome.disposition);
        };
        assert_eq!(scope, "queue");
    }

    // Zero-length queue: overflow names the in-flight limit instead.
    let server = MediatorServer::new(
        mini_hospital_catalog().unwrap(),
        &det_options(false, 1, RetryPolicy::none()),
        ServerConfig {
            max_queue: 0,
            max_in_flight: 2,
            tenant_quota: 100,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let run = server.run(&aig, &burst(&["a", "b", "c", "d"]));
    assert_conformant(&run, 4, "in-flight overflow");
    assert_eq!(run.obs.rejected_in_flight, 2);
    assert!(matches!(
        &run.outcomes[2].disposition,
        Disposition::Rejected(MediatorError::Overloaded { scope, .. }) if scope == "in_flight"
    ));

    // Tenant quota: one noisy tenant is capped while capacity remains.
    let server = MediatorServer::new(
        mini_hospital_catalog().unwrap(),
        &det_options(false, 1, RetryPolicy::none()),
        ServerConfig {
            max_queue: 100,
            max_in_flight: 1,
            tenant_quota: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let run = server.run(&aig, &burst(&["noisy", "noisy", "noisy", "noisy", "quiet"]));
    assert_conformant(&run, 5, "tenant quota");
    assert_eq!(run.obs.rejected_tenant, 2);
    assert_eq!(run.obs.completed, 3, "the quiet tenant is not starved");
    for outcome in &run.outcomes {
        if let Disposition::Rejected(MediatorError::Overloaded { tenant, scope, .. }) =
            &outcome.disposition
        {
            assert_eq!(tenant, "noisy");
            assert_eq!(scope, "tenant");
        }
    }
    assert!(matches!(
        run.outcomes[4].disposition,
        Disposition::Completed
    ));
}

/// (c) A request whose budget drains away in the queue fails fast without
/// executing, and queued requests dispatch earliest-deadline-first.
#[test]
fn deadlines_fail_fast_in_queue_and_dispatch_is_edf() {
    let aig = sigma0().unwrap();
    // A hefty per-query overhead makes the *logical* service time seconds
    // long, so requests arriving close together genuinely queue.
    let mut options = det_options(false, 1, RetryPolicy::none());
    options.graph.cost_model.per_query_overhead_secs = 1.0;
    let server = MediatorServer::new(
        mini_hospital_catalog().unwrap(),
        &options,
        ServerConfig {
            max_queue: 100,
            max_in_flight: 1,
            tenant_quota: 100,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // One request occupies the single slot; three arrive behind it while
    // it runs: a generous deadline, a hopeless one, and none at all —
    // spawned in anti-EDF arrival order.
    let mut arrivals = vec![arrival("t", 0.0)];
    let mut none = arrival("t", 0.01);
    none.deadline_secs = None;
    arrivals.push(none);
    let mut generous = arrival("t", 0.02);
    generous.deadline_secs = Some(500.0);
    arrivals.push(generous);
    let mut hopeless = arrival("t", 0.03);
    hopeless.deadline_secs = Some(0.04);
    arrivals.push(hopeless);
    let run = server.run(&aig, &arrivals);
    assert_conformant(&run, 4, "edf");
    assert_eq!(run.obs.deadline_exceeded, 1);
    assert_eq!(run.obs.completed, 3);

    // The hopeless request expired while queued: classified without
    // execution, at the moment a slot would have been free.
    let hopeless = &run.outcomes[3];
    let Disposition::DeadlineExceeded(MediatorError::DeadlineExceeded {
        task, budget_secs, ..
    }) = &hopeless.disposition
    else {
        panic!("expected DeadlineExceeded, got {:?}", hopeless.disposition);
    };
    assert_eq!(task, "queue");
    assert_eq!(*budget_secs, 0.04);
    assert!(
        hopeless.latency_secs >= 0.04,
        "cannot exceed a budget it still had"
    );

    // EDF: the earliest-deadline waiter (index 3) is considered first
    // (failing fast), then the generous one (index 2) runs, and the
    // deadline-less request (index 1) goes last.
    assert!(hopeless.finished_secs <= run.outcomes[2].finished_secs);
    assert!(
        run.outcomes[2].finished_secs < run.outcomes[1].finished_secs,
        "deadline-less requests queue behind deadlined ones: {:?}",
        run.outcomes
    );
}

/// (d) The breaker lifecycle: consecutive storm failures trip DB3's
/// breaker, open-breaker requests are served degraded (DB3 skipped, its
/// subtrees named), the seeded half-open probe closes it after the
/// cooldown, and service returns to clean byte-identical completions.
#[test]
fn breaker_trips_degrades_probes_and_recovers() {
    let aig = sigma0().unwrap();
    let options = det_options(false, 1, fast_retry(2));
    let server = MediatorServer::new(
        mini_hospital_catalog().unwrap(),
        &options,
        ServerConfig {
            seed: 11,
            max_queue: 100,
            max_in_flight: 1,
            tenant_quota: 100,
            breaker_threshold: 2,
            breaker_cooldown_secs: 200.0,
            degrade: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let clean = direct_document(&options);
    // Widely spaced arrivals so each runs alone: two under a DB3 storm
    // (trips the breaker), two after the storm but inside the cooldown
    // (degraded), one past the jittered probe time (carries the probe),
    // one after recovery.
    let mut arrivals = Vec::new();
    for (i, at) in [0.0, 100.0, 200.0, 300.0, 1000.0, 1100.0]
        .iter()
        .enumerate()
    {
        let mut a = arrival("t", *at);
        if i < 2 {
            a.outage_sources = vec!["DB3".to_string()];
        }
        arrivals.push(a);
    }
    let run = server.run(&aig, &arrivals);
    assert_conformant(&run, 6, "breaker lifecycle");
    let obs = &run.obs;
    assert_eq!(obs.failed, 2, "storm failures: {obs:?}");
    assert_eq!(obs.breaker_trips, 1, "{obs:?}");
    assert_eq!(obs.degraded, 2, "open breaker degrades: {obs:?}");
    assert_eq!(obs.breaker_probes, 1, "{obs:?}");
    assert_eq!(obs.breaker_closes, 1, "{obs:?}");
    assert_eq!(obs.completed, 2, "probe + recovered request: {obs:?}");

    for outcome in &run.outcomes[..2] {
        assert!(
            matches!(
                &outcome.disposition,
                Disposition::Failed(MediatorError::SourceUnavailable { source, .. })
                    if source == "DB3"
            ),
            "{:?}",
            outcome.disposition
        );
    }
    for outcome in &run.outcomes[2..4] {
        let Disposition::Degraded { skipped } = &outcome.disposition else {
            panic!("expected Degraded, got {:?}", outcome.disposition);
        };
        assert!(!skipped.is_empty());
        let document = outcome.document.as_ref().unwrap();
        assert_ne!(
            canonical(&aig, document),
            clean,
            "a degraded document must actually omit the skipped subtree"
        );
    }
    for outcome in &run.outcomes[4..] {
        assert!(matches!(outcome.disposition, Disposition::Completed));
        assert_eq!(
            canonical(&aig, outcome.document.as_ref().unwrap()),
            clean,
            "service after recovery is byte-identical to direct requests"
        );
    }
}

/// (d') With degradation disabled an open breaker fails fast instead —
/// still one structured outcome per request, never a hang.
#[test]
fn open_breaker_without_degradation_fails_fast() {
    let aig = sigma0().unwrap();
    let server = MediatorServer::new(
        mini_hospital_catalog().unwrap(),
        &det_options(false, 1, RetryPolicy::none()),
        ServerConfig {
            seed: 11,
            max_queue: 100,
            max_in_flight: 1,
            tenant_quota: 100,
            breaker_threshold: 2,
            breaker_cooldown_secs: 1.0e6,
            degrade: false,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut arrivals = Vec::new();
    for (i, at) in [0.0, 100.0, 200.0, 300.0].iter().enumerate() {
        let mut a = arrival("t", *at);
        if i < 2 {
            a.outage_sources = vec!["DB3".to_string()];
        }
        arrivals.push(a);
    }
    let run = server.run(&aig, &arrivals);
    assert_conformant(&run, 4, "fail fast");
    assert_eq!(run.obs.breaker_trips, 1);
    assert_eq!(run.obs.degraded, 0);
    assert_eq!(run.obs.failed, 4, "open breaker fails fast: {:?}", run.obs);
}

/// (e) A clean workload across the executor matrix: everything completes,
/// nothing is rejected, and every served document is byte-identical to a
/// direct `Mediator::request` on the same catalog and plan cache.
#[test]
fn clean_admitted_documents_match_direct_requests() {
    let aig = sigma0().unwrap();
    for (parallel, threads) in [(false, 1), (true, 1), (true, 3)] {
        let context = format!("parallel={parallel} threads={threads}");
        let options = det_options(parallel, threads, RetryPolicy::none());
        let server = MediatorServer::new(
            mini_hospital_catalog().unwrap(),
            &options,
            ServerConfig {
                max_queue: 16,
                max_in_flight: 2,
                tenant_quota: 16,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let clean = direct_document(&options);
        let arrivals: Vec<Arrival> = (0..8)
            .map(|i| arrival(["acme", "globex"][i % 2], 0.2 * i as f64))
            .collect();
        let run = server.run(&aig, &arrivals);
        assert_conformant(&run, 8, &context);
        assert_eq!(run.obs.completed, 8, "{context}");
        assert_eq!(run.obs.rejected, 0, "{context}");
        assert!(
            run.obs.p99_secs > 0.0,
            "{context}: logical latencies recorded"
        );
        for outcome in &run.outcomes {
            assert_eq!(
                canonical(&aig, outcome.document.as_ref().unwrap()),
                clean,
                "{context}: served document of {} differs from a direct request",
                outcome.index
            );
        }
    }
}
