//! Wrong-answer chaos: a seeded conformance harness over the corruption
//! faults of [`aig_mediator::faults`] and the integrity defense of
//! [`aig_mediator::integrity`]. The matrix sweeps {fault kind} × {rate} ×
//! {sequential, parallel Static, parallel Dynamic} × {1, 4 threads} ×
//! {retry policy} and asserts the system is **never silently wrong**:
//! every injected corruption is either *masked* (the published relations
//! are byte-identical to a clean run) or *detected* with a structured
//! [`MediatorError::IntegrityViolation`] naming the task, table, and the
//! violated constraint. The integrity ledger must balance on every run —
//! `injected = masked_by_retry + detected_by_guard + detected_by_constraint`
//! — and a defense-off ablation proves the faults really do reach the
//! output when nobody checks. Everything is driven by fixed seeds, so
//! these tests are exact, not statistical.

use aig_core::paper::{mini_hospital_catalog, sigma0};
use aig_core::spec::Aig;
use aig_core::{compile_constraints, decompose_queries};
use aig_mediator::exec::{execute_graph, ExecOptions, ExecResult, Scheduling};
use aig_mediator::faults::{
    FaultConfig, FaultKind, FaultOutcome, FaultPlan, IntegrityOutcome, RetryPolicy, WrongAnswerKind,
};
use aig_mediator::graph::{build_graph, GraphOptions, TaskGraph};
use aig_mediator::parallel::execute_graph_parallel;
use aig_mediator::unfold::{unfold, CutOff};
use aig_mediator::{run_with_report, MediatorError, MediatorOptions, NetworkModel};
use aig_relstore::{Catalog, Database, SourceId, Value};
use std::collections::HashMap;

fn setup(catalog: &Catalog) -> (Aig, TaskGraph) {
    let aig = sigma0().unwrap();
    let compiled = compile_constraints(&aig).unwrap();
    let (specialized, _) = decompose_queries(&compiled).unwrap();
    let unfolded = unfold(&specialized, 3, CutOff::Truncate).unwrap();
    let graph = build_graph(&unfolded.aig, catalog, &GraphOptions::default()).unwrap();
    (unfolded.aig, graph)
}

fn topo_plan(graph: &TaskGraph) -> HashMap<SourceId, Vec<usize>> {
    let mut per_source: HashMap<SourceId, Vec<usize>> = HashMap::new();
    for &id in &graph.topo {
        per_source
            .entry(graph.tasks[id].source)
            .or_default()
            .push(id);
    }
    per_source
}

/// A retry policy with sleeps short enough for tests but real backoff.
fn fast_retry(max_attempts: usize) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        backoff_base_secs: 0.0001,
        backoff_cap_secs: 0.001,
        jitter: 0.5,
        timeout_secs: f64::INFINITY,
    }
}

/// Fault injection with the integrity defense switched on.
fn defended_opts(plan: FaultPlan, retry: RetryPolicy) -> ExecOptions {
    let mut opts = ExecOptions::default();
    opts.policy.check_integrity = true;
    opts.faults = Some(plan);
    opts.policy.retry = retry;
    opts
}

/// The mini hospital catalog with a byte-identical replica of `name` added
/// and declared as its failover target.
fn catalog_with_replica_of(name: &str) -> Catalog {
    let mut catalog = mini_hospital_catalog().unwrap();
    let primary = catalog.source_id(name).unwrap();
    let mut replica_db = Database::new(format!("{name}R"));
    for table in catalog.source(primary).tables() {
        replica_db.add_table(table.clone()).unwrap();
    }
    let replica = catalog.add_source(replica_db).unwrap();
    catalog.declare_replica(primary, replica).unwrap();
    catalog
}

/// Every output relation of `faulted` equals the clean run's, byte for byte.
fn assert_stores_identical(graph: &TaskGraph, clean: &ExecResult, faulted: &ExecResult) {
    for task in &graph.tasks {
        if let Some(key) = &task.output {
            assert_eq!(
                clean.store.get(key).unwrap(),
                faulted.store.get(key).unwrap(),
                "relation of {} drifted under wrong-answer faults",
                task.label
            );
        }
    }
}

/// True if any stored relation of `faulted` differs from the clean run.
fn store_drifted(graph: &TaskGraph, clean: &ExecResult, faulted: &ExecResult) -> bool {
    graph.tasks.iter().any(|task| {
        task.output
            .as_ref()
            .is_some_and(|key| clean.store.get(key).unwrap() != faulted.store.get(key).unwrap())
    })
}

/// The structured violation names a real task, its table, and a constraint.
fn assert_violation_is_structured(graph: &TaskGraph, catalog: &Catalog, err: &MediatorError) {
    let MediatorError::IntegrityViolation {
        task,
        source,
        table,
        constraint,
        ..
    } = err
    else {
        panic!("expected IntegrityViolation, got {err}");
    };
    assert!(
        graph.tasks.iter().any(|t| &t.label == task),
        "violation names unknown task {task}"
    );
    assert!(!constraint.is_empty(), "violation lost its constraint");
    assert!(!table.is_empty(), "violation lost its table");
    let sid = catalog
        .source_id(source)
        .unwrap_or_else(|_| panic!("violation names unknown source {source}"));
    assert!(
        catalog.source(sid).table(table).is_ok(),
        "violation names unknown table {source}.{table}"
    );
    assert!(
        err.to_string().contains("integrity violation"),
        "display lost the headline: {err}"
    );
}

/// The headline conformance sweep: {corruption rate} × {seed} × {executor:
/// sequential, parallel Static, parallel Dynamic} × {1, 4 threads} ×
/// {retrying, zero-retry} with checks on. Every run is either byte-identical
/// to the clean run with a balanced all-masked ledger, or fails with a
/// structured `IntegrityViolation` — never silently wrong.
#[test]
fn corruption_matrix_is_masked_or_detected_never_silent() {
    let catalog = mini_hospital_catalog().unwrap();
    let (aig, graph) = setup(&catalog);
    let args = [("date", Value::str("d1"))];
    let clean = execute_graph(&aig, &catalog, &graph, &args, &ExecOptions::default()).unwrap();
    assert!(clean.integrity.events.is_empty());

    let mut masked_total = 0usize;
    let mut detected_total = 0usize;
    for seed in [1u64, 2, 3] {
        for rate in [0.05f64, 0.2] {
            let cfg = FaultConfig {
                seed,
                corrupt_rate: rate,
                ..FaultConfig::default()
            };
            let plan = FaultPlan::new(&cfg, &catalog).unwrap();
            for retry in [fast_retry(6), RetryPolicy::none()] {
                let opts = defended_opts(plan.clone(), retry);
                let runs: Vec<Result<ExecResult, MediatorError>> = vec![
                    execute_graph(&aig, &catalog, &graph, &args, &opts),
                    execute_graph_parallel(
                        &aig,
                        &catalog,
                        &graph,
                        &args,
                        &opts,
                        &topo_plan(&graph),
                    ),
                    execute_graph_parallel(
                        &aig,
                        &catalog,
                        &graph,
                        &args,
                        &opts
                            .clone()
                            .with_threads(4)
                            .with_scheduling(Scheduling::Dynamic),
                        &topo_plan(&graph),
                    ),
                ];
                let mut ok_ledgers = Vec::new();
                for run in runs {
                    match run {
                        Ok(result) => {
                            // Masked: the corruption never reached the store.
                            assert_stores_identical(&graph, &clean, &result);
                            let log = &result.integrity;
                            assert!(log.balanced(), "ledger unbalanced: {:?}", log.events);
                            assert_eq!(log.undetected(), 0);
                            assert_eq!(log.count(IntegrityOutcome::DetectedByGuard), 0);
                            assert!(log
                                .events
                                .iter()
                                .all(|e| e.outcome == IntegrityOutcome::MaskedByRetry
                                    && matches!(e.kind, WrongAnswerKind::CorruptRow(_))
                                    && !e.constraint.is_empty()));
                            masked_total += log.injected();
                            ok_ledgers.push(log.sorted_events());
                        }
                        Err(err) => {
                            // Detected: the failure names task, table, and
                            // constraint — wrong data never ships silently.
                            assert_violation_is_structured(&graph, &catalog, &err);
                            detected_total += 1;
                        }
                    }
                }
                // The decision streams are pure functions of
                // (seed, source, table, task, attempt): every executor that
                // completed saw the very same corruption schedule.
                for pair in ok_ledgers.windows(2) {
                    assert_eq!(pair[0], pair[1], "seed {seed} rate {rate}");
                }
            }
        }
    }
    assert!(masked_total > 0, "the matrix never masked a corruption");
    assert!(detected_total > 0, "the matrix never surfaced a detection");
}

/// With a zero-retry policy and certain corruption, both executors surface
/// the structured violation instead of publishing wrong data.
#[test]
fn zero_retry_detection_surfaces_structured_violation() {
    let catalog = mini_hospital_catalog().unwrap();
    let (aig, graph) = setup(&catalog);
    let args = [("date", Value::str("d1"))];
    let cfg = FaultConfig {
        seed: 9,
        corrupt_rate: 1.0,
        ..FaultConfig::default()
    };
    let plan = FaultPlan::new(&cfg, &catalog).unwrap();
    let opts = defended_opts(plan, RetryPolicy::none());

    for err in [
        execute_graph(&aig, &catalog, &graph, &args, &opts).unwrap_err(),
        execute_graph_parallel(&aig, &catalog, &graph, &args, &opts, &topo_plan(&graph))
            .unwrap_err(),
    ] {
        assert_violation_is_structured(&graph, &catalog, &err);
    }
}

/// The ablation that justifies the defense: with checks off the same
/// corruption schedule completes "successfully", the stored relations drift
/// from the clean run, and the ledger says so — `undetected > 0` and the
/// accounting identity no longer balances.
#[test]
fn defense_off_lets_corruption_through_and_the_ledger_says_so() {
    let catalog = mini_hospital_catalog().unwrap();
    let (aig, graph) = setup(&catalog);
    let args = [("date", Value::str("d1"))];
    let clean = execute_graph(&aig, &catalog, &graph, &args, &ExecOptions::default()).unwrap();

    let cfg = FaultConfig {
        seed: 2,
        corrupt_rate: 0.2,
        ..FaultConfig::default()
    };
    let plan = FaultPlan::new(&cfg, &catalog).unwrap();
    let mut opts = ExecOptions::default();
    opts.policy.check_integrity = false;
    opts.policy.check_guards = false;
    opts.faults = Some(plan);
    opts.policy.retry = fast_retry(6);
    let result = execute_graph(&aig, &catalog, &graph, &args, &opts).unwrap();
    let log = &result.integrity;
    assert!(log.undetected() > 0, "no corruption flowed through");
    assert_eq!(log.injected(), log.undetected());
    assert!(!log.balanced(), "an unchecked run must not balance");
    assert!(
        store_drifted(&graph, &clean, &result),
        "undetected corruption left no trace in the store"
    );
}

/// Vanished tables: transient per-attempt table outages are masked by the
/// retry loop (double-recorded in the resilience and integrity ledgers);
/// with no retry budget they surface as a `SourceFault` naming the table.
#[test]
fn table_outage_is_masked_by_retry_or_surfaces_naming_the_table() {
    let catalog = mini_hospital_catalog().unwrap();
    let (aig, graph) = setup(&catalog);
    let args = [("date", Value::str("d1"))];
    let clean = execute_graph(&aig, &catalog, &graph, &args, &ExecOptions::default()).unwrap();

    let cfg = FaultConfig {
        seed: 3,
        table_outage_rate: 0.3,
        ..FaultConfig::default()
    };
    let plan = FaultPlan::new(&cfg, &catalog).unwrap();

    let opts = defended_opts(plan.clone(), fast_retry(8));
    let seq = execute_graph(&aig, &catalog, &graph, &args, &opts).unwrap();
    assert_stores_identical(&graph, &clean, &seq);
    let log = &seq.integrity;
    assert!(log.injected() > 0, "no table outage injected");
    assert!(log.balanced());
    assert!(log
        .events
        .iter()
        .all(|e| e.kind == WrongAnswerKind::TableOutage
            && e.outcome == IntegrityOutcome::MaskedByRetry
            && e.constraint.starts_with("table-available(")));
    // Each masked outage is also a retried fail-stop event: the two ledgers
    // agree on what happened.
    let retried_outages = seq
        .resilience
        .events
        .iter()
        .filter(|e| e.kind == FaultKind::TableOutage && e.outcome == FaultOutcome::Retried)
        .count();
    assert_eq!(retried_outages, log.injected());

    let par =
        execute_graph_parallel(&aig, &catalog, &graph, &args, &opts, &topo_plan(&graph)).unwrap();
    assert_stores_identical(&graph, &clean, &par);
    assert_eq!(par.integrity.sorted_events(), log.sorted_events());

    let hard = FaultConfig {
        seed: 3,
        table_outage_rate: 0.9,
        ..FaultConfig::default()
    };
    let plan = FaultPlan::new(&hard, &catalog).unwrap();
    let opts = defended_opts(plan, RetryPolicy::none());
    let err = execute_graph(&aig, &catalog, &graph, &args, &opts).unwrap_err();
    let MediatorError::SourceFault { kind, source, .. } = &err else {
        panic!("expected SourceFault, got {err}");
    };
    assert!(
        kind.starts_with("table-outage("),
        "the surfaced fault must name the vanished table: {kind}"
    );
    let table = kind
        .strip_prefix("table-outage(")
        .and_then(|k| k.strip_suffix(')'))
        .unwrap();
    let sid = catalog.source_id(source).unwrap();
    assert!(
        catalog.source(sid).table(table).is_ok(),
        "unknown table {source}.{table}"
    );
}

/// Replica staleness passes the task-boundary guard *by design* — trailing
/// truncation preserves arity, types, row identity and key uniqueness — so
/// at the executor level it is recorded as `undetected` and the store
/// drifts. This is exactly the gap the document-level constraint check
/// closes (next test).
#[test]
fn stale_replica_passes_the_relation_guard_but_is_ledgered() {
    let catalog = catalog_with_replica_of("DB3");
    let (aig, graph) = setup(&catalog);
    let args = [("date", Value::str("d1"))];
    let clean = execute_graph(&aig, &catalog, &graph, &args, &ExecOptions::default()).unwrap();

    let cfg = FaultConfig {
        seed: 4,
        outages: vec!["DB3".to_string()],
        stale_replica_rate: 1.0,
        stale_replica_rows: 4,
        ..FaultConfig::default()
    };
    let plan = FaultPlan::new(&cfg, &catalog).unwrap();
    let mut opts = defended_opts(plan, fast_retry(3));
    opts.policy.check_guards = false;
    let result = execute_graph(&aig, &catalog, &graph, &args, &opts).unwrap();
    let stale: Vec<_> = result
        .integrity
        .events
        .iter()
        .filter(|e| e.kind == WrongAnswerKind::StaleReplica)
        .collect();
    assert!(!stale.is_empty(), "no failed-over task answered stale");
    assert!(stale
        .iter()
        .all(|e| e.outcome == IntegrityOutcome::Undetected));
    assert!(!result.integrity.balanced());
    assert!(
        store_drifted(&graph, &clean, &result),
        "a stale replica must leave truncated relations behind"
    );
    assert!(
        result.resilience.count(FaultOutcome::FailedOver) > 0,
        "staleness only applies to failed-over tasks"
    );
}

/// The document-level defense: a stale DB3 replica truncates billing
/// answers, which silently passes every task-boundary check but breaks the
/// published document's inclusion constraint
/// `patient(treatment.trId <= item.trId)`. The pipeline's constraint check
/// catches it, upgrades the ledger, and surfaces the structured violation.
#[test]
fn stale_replica_is_detected_by_the_document_constraint_check() {
    let catalog = catalog_with_replica_of("DB3");
    let aig = sigma0().unwrap();
    let args = [("date", Value::str("d1"))];
    let mut options = MediatorOptions {
        unfold_depth: 3,
        max_depth: 3,
        cutoff: CutOff::Truncate,
        network: NetworkModel::mbps(1.0),
        check_integrity: true,
        // Disable the compiled evaluation-time guards so the document-level
        // ConstraintSet check is provably the layer that catches this.
        check_guards: false,
        ..MediatorOptions::default()
    };
    options.graph.eval_scale = 0.0;
    options.graph.cost_model.per_query_overhead_secs = 1.0;
    options.faults = Some(FaultConfig {
        seed: 4,
        outages: vec!["DB3".to_string()],
        stale_replica_rate: 1.0,
        stale_replica_rows: 4,
        ..FaultConfig::default()
    });
    options.retry = fast_retry(3);

    let err = run_with_report(&aig, &catalog, &args, &options).unwrap_err();
    let MediatorError::IntegrityViolation {
        task,
        table,
        constraint,
        ..
    } = &err
    else {
        panic!("expected IntegrityViolation, got {err}");
    };
    assert_eq!(constraint, "patient(treatment.trId <= item.trId)");
    assert!(!task.is_empty(), "violation lost its task");
    assert!(!table.is_empty(), "violation lost its table");
}

/// A clean pipeline run with checks on reports an enabled, empty, balanced
/// integrity section; a corrupted run masks everything by retry, publishes
/// a byte-identical document, and reports a balancing ledger in JSON.
#[test]
fn pipeline_reports_the_integrity_ledger() {
    let catalog = mini_hospital_catalog().unwrap();
    let aig = sigma0().unwrap();
    let args = [("date", Value::str("d1"))];
    let mut options = MediatorOptions {
        unfold_depth: 3,
        max_depth: 3,
        cutoff: CutOff::Truncate,
        network: NetworkModel::mbps(1.0),
        check_integrity: true,
        ..MediatorOptions::default()
    };
    options.graph.eval_scale = 0.0;
    options.graph.cost_model.per_query_overhead_secs = 1.0;

    let (clean_run, clean_report) = run_with_report(&aig, &catalog, &args, &options).unwrap();
    assert!(clean_report.integrity.enabled);
    assert_eq!(clean_report.integrity.injected, 0);
    assert!(clean_report.integrity.balanced);

    for parallel_exec in [false, true] {
        let mut faulted = options.clone();
        faulted.parallel_exec = parallel_exec;
        faulted.faults = Some(FaultConfig {
            seed: 11,
            corrupt_rate: 0.2,
            ..FaultConfig::default()
        });
        faulted.retry = fast_retry(6);
        let (run, report) = run_with_report(&aig, &catalog, &args, &faulted).unwrap();
        assert_eq!(
            clean_run.tree, run.tree,
            "masked corruption must not change the document (parallel={parallel_exec})"
        );
        let i = &report.integrity;
        assert!(i.enabled);
        assert!(i.injected > 0, "no corruption injected");
        assert_eq!(i.masked_by_retry, i.injected);
        assert_eq!(i.undetected, 0);
        assert!(i.balanced);
        for event in &i.events {
            assert_eq!(event.kind, "corrupt-row");
            assert_eq!(event.outcome, "masked_by_retry");
            assert!(!event.detail.is_empty());
            assert!(!event.constraint.is_empty());
        }
        let json = report.to_json().to_pretty();
        assert!(json.contains("\"integrity\""));
        assert!(json.contains("\"balanced\": true"));
        assert!(json.contains("corrupt-row"));
        let text = aig_mediator::render_report(&report);
        assert!(text.contains("integrity (checks on)"), "{text}");
        assert!(text.contains("balanced"), "{text}");
    }
}

/// Determinism regression (the `FaultPlan` purity contract): identical
/// `(seed, config, catalog)` produce byte-identical wrong-answer schedules
/// — across repeated plan constructions, across query order, and across
/// executors and thread counts observing them.
#[test]
fn fault_schedules_are_deterministic_across_executors_and_repeats() {
    let catalog = mini_hospital_catalog().unwrap();
    let (aig, graph) = setup(&catalog);
    let args = [("date", Value::str("d1"))];
    let cfg = FaultConfig {
        seed: 42,
        corrupt_rate: 0.3,
        table_outage_rate: 0.1,
        stale_replica_rate: 0.5,
        stale_replica_rows: 2,
        ..FaultConfig::default()
    };
    let plan_a = FaultPlan::new(&cfg, &catalog).unwrap();
    let plan_b = FaultPlan::new(&cfg, &catalog).unwrap();

    // The raw decision streams agree point-for-point, regardless of the
    // order the sites are interrogated in.
    let sources: Vec<SourceId> = (0..4)
        .map(|i| catalog.source_id(&format!("DB{}", i + 1)).unwrap())
        .collect();
    let tables = ["patient", "visitInfo", "cover", "billing", "treatment"];
    let mut schedule_a = Vec::new();
    for &source in &sources {
        for table in tables {
            for task in 0..graph.tasks.len() {
                for attempt in 0..4 {
                    schedule_a.push((
                        plan_a.decide_table_outage(source, table, task, attempt),
                        plan_a.decide_corruption(source, table, task, attempt),
                        plan_a.decide_stale(source, table, task, attempt),
                    ));
                }
            }
        }
    }
    let mut schedule_b = Vec::new();
    for &source in sources.iter().rev() {
        for table in tables.iter().rev() {
            for task in (0..graph.tasks.len()).rev() {
                for attempt in (0..4).rev() {
                    schedule_b.push((
                        plan_b.decide_table_outage(source, table, task, attempt),
                        plan_b.decide_corruption(source, table, task, attempt),
                        plan_b.decide_stale(source, table, task, attempt),
                    ));
                }
            }
        }
    }
    schedule_b.reverse();
    assert_eq!(schedule_a, schedule_b, "decision streams are not pure");
    assert!(
        schedule_a
            .iter()
            .any(|(o, c, s)| *o || c.is_some() || s.is_some()),
        "the schedule never injects anything"
    );

    // Executors observe the same schedule: the sorted integrity ledgers of
    // every executor/thread-count/scheduling combination are identical.
    let cfg = FaultConfig {
        seed: 42,
        corrupt_rate: 0.3,
        ..FaultConfig::default()
    };
    let plan = FaultPlan::new(&cfg, &catalog).unwrap();
    let opts = defended_opts(plan, fast_retry(8));
    let mut ledgers = Vec::new();
    for _ in 0..2 {
        let seq = execute_graph(&aig, &catalog, &graph, &args, &opts).unwrap();
        ledgers.push(seq.integrity.sorted_events());
    }
    for (threads, scheduling) in [
        (1, Scheduling::Static),
        (4, Scheduling::Static),
        (4, Scheduling::Dynamic),
    ] {
        let opts = opts
            .clone()
            .with_threads(threads)
            .with_scheduling(scheduling);
        let par = execute_graph_parallel(&aig, &catalog, &graph, &args, &opts, &topo_plan(&graph))
            .unwrap();
        ledgers.push(par.integrity.sorted_events());
    }
    assert!(!ledgers[0].is_empty(), "seed 42 injected nothing");
    for pair in ledgers.windows(2) {
        assert_eq!(pair[0], pair[1], "fault schedule drifted across runs");
    }
}
