//! Property tests over the optimization phase: on random dependency DAGs,
//! `Schedule` always produces dependency-consistent plans, completion times
//! respect producers and same-source sequencing, and `Merge` never increases
//! the cost of the scheduled plan (it only accepts improving pairs).

use aig_mediator::cost::{completion_times, response_time, CostGraph, CostNode};
use aig_mediator::merge::{merge, no_merge};
use aig_mediator::schedule::{naive_plan, schedule};
use aig_mediator::NetworkModel;
use aig_relstore::SourceId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomDag {
    nodes: Vec<(u32, f64)>,          // (source, eval_secs)
    edges: Vec<(usize, usize, f64)>, // producer < consumer, bytes
}

fn dag_strategy() -> impl Strategy<Value = RandomDag> {
    let node = (0u32..4, 0.01f64..2.0);
    prop::collection::vec(node, 2..12).prop_flat_map(|nodes| {
        let n = nodes.len();
        let edge = (0..n * n).prop_map(move |k| (k / n, k % n));
        prop::collection::vec((edge, 1.0f64..100_000.0), 0..(2 * n)).prop_map(move |raw| {
            RandomDag {
                nodes: nodes.clone(),
                edges: raw
                    .into_iter()
                    .filter(|((a, b), _)| a < b) // forward edges keep it a DAG
                    .map(|((a, b), bytes)| (a, b, bytes))
                    .collect(),
            }
        })
    })
}

fn build(dag: &RandomDag) -> CostGraph {
    let nodes = dag
        .nodes
        .iter()
        .map(|&(source, eval_secs)| CostNode {
            source: SourceId(source),
            eval_secs,
            mergeable: source != 0,
            passthrough: false,
            members: vec![],
        })
        .collect();
    let mut deps = vec![Vec::new(); dag.nodes.len()];
    for &(a, b, bytes) in &dag.edges {
        if !deps[b].iter().any(|(d, _)| *d == a) {
            deps[b].push((a, bytes));
        }
    }
    CostGraph { nodes, deps }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn schedule_is_always_consistent(dag in dag_strategy()) {
        let g = build(&dag);
        let net = NetworkModel::mbps(1.0);
        let plan = schedule(&g, &net);
        prop_assert!(plan.consistent_with(&g));
        prop_assert!(naive_plan(&g).consistent_with(&g));
        // Every node is scheduled exactly once.
        let mut count = vec![0usize; g.len()];
        for seq in plan.per_source.values() {
            for &t in seq {
                count[t] += 1;
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn completion_times_respect_dependencies(dag in dag_strategy()) {
        let g = build(&dag);
        let net = NetworkModel::mbps(1.0);
        let plan = schedule(&g, &net);
        let done = completion_times(&g, &plan, &net);
        for (id, deps) in g.deps.iter().enumerate() {
            // A consumer finishes after each producer plus its own work.
            for (dep, _) in deps {
                prop_assert!(
                    done[id] >= done[*dep] + g.nodes[id].eval_secs - 1e-9,
                    "task {id} finished before its producer {dep}"
                );
            }
        }
        // Same-source tasks never overlap: total busy time per source is a
        // lower bound on the makespan.
        for (source, seq) in &plan.per_source {
            let busy: f64 = seq.iter().map(|&t| g.nodes[t].eval_secs).sum();
            let makespan = response_time(&g, &plan, &net);
            prop_assert!(makespan >= busy - 1e-9, "source {source} overlapped");
        }
    }

    #[test]
    fn merging_never_increases_scheduled_cost(dag in dag_strategy()) {
        let g = build(&dag);
        let net = NetworkModel::mbps(1.0);
        let baseline = no_merge(&g, &net);
        let merged = merge(&g, &net, 0.2);
        prop_assert!(merged.response_secs <= baseline.response_secs + 1e-9);
        prop_assert!(merged.plan.consistent_with(&merged.graph));
        prop_assert!(merged.graph.topo().is_some());
        // Node count shrinks by exactly the number of merges.
        prop_assert_eq!(merged.graph.len(), g.len() - merged.merges);
    }
}
