//! Randomized property tests over the optimization phase: on random
//! dependency DAGs, `Schedule` always produces dependency-consistent plans,
//! completion times respect producers and same-source sequencing, and
//! `Merge` never increases the cost of the scheduled plan (it only accepts
//! improving pairs). Seeds are fixed, so failures reproduce exactly.

use aig_mediator::cost::{completion_times, response_time, CostGraph, CostNode};
use aig_mediator::merge::{merge, no_merge};
use aig_mediator::schedule::{naive_plan, schedule};
use aig_mediator::NetworkModel;
use aig_prng::{Rng, SeedableRng, StdRng};
use aig_relstore::SourceId;

#[derive(Debug, Clone)]
struct RandomDag {
    nodes: Vec<(u32, f64)>,          // (source, eval_secs)
    edges: Vec<(usize, usize, f64)>, // producer < consumer, bytes
}

fn random_dag(rng: &mut StdRng) -> RandomDag {
    let n = rng.gen_range(2usize..12);
    let nodes: Vec<(u32, f64)> = (0..n)
        .map(|_| (rng.gen_range(0u32..4), rng.gen_range(0.01f64..2.0)))
        .collect();
    let edge_count = rng.gen_range(0usize..2 * n);
    let mut edges = Vec::new();
    for _ in 0..edge_count {
        let a = rng.gen_range(0usize..n);
        let b = rng.gen_range(0usize..n);
        if a < b {
            // Forward edges keep it a DAG.
            edges.push((a, b, rng.gen_range(1.0f64..100_000.0)));
        }
    }
    RandomDag { nodes, edges }
}

fn build(dag: &RandomDag) -> CostGraph {
    let nodes = dag
        .nodes
        .iter()
        .map(|&(source, eval_secs)| CostNode {
            source: SourceId(source),
            eval_secs,
            mergeable: source != 0,
            passthrough: false,
            members: vec![],
        })
        .collect();
    let mut deps = vec![Vec::new(); dag.nodes.len()];
    for &(a, b, bytes) in &dag.edges {
        if !deps[b].iter().any(|(d, _)| *d == a) {
            deps[b].push((a, bytes));
        }
    }
    CostGraph { nodes, deps }
}

#[test]
fn schedule_is_always_consistent() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    for case in 0..128 {
        let dag = random_dag(&mut rng);
        let g = build(&dag);
        let net = NetworkModel::mbps(1.0);
        let plan = schedule(&g, &net);
        assert!(plan.consistent_with(&g), "case {case}: {dag:?}");
        assert!(naive_plan(&g).consistent_with(&g), "case {case}: {dag:?}");
        // Every node is scheduled exactly once.
        let mut count = vec![0usize; g.len()];
        for seq in plan.per_source.values() {
            for &t in seq {
                count[t] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1), "case {case}: {dag:?}");
    }
}

#[test]
fn completion_times_respect_dependencies() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    for case in 0..128 {
        let dag = random_dag(&mut rng);
        let g = build(&dag);
        let net = NetworkModel::mbps(1.0);
        let plan = schedule(&g, &net);
        let done = completion_times(&g, &plan, &net);
        for (id, deps) in g.deps.iter().enumerate() {
            // A consumer finishes after each producer plus its own work.
            for (dep, _) in deps {
                assert!(
                    done[id] >= done[*dep] + g.nodes[id].eval_secs - 1e-9,
                    "case {case}: task {id} finished before its producer {dep}: {dag:?}"
                );
            }
        }
        // Same-source tasks never overlap: total busy time per source is a
        // lower bound on the makespan.
        for (source, seq) in &plan.per_source {
            let busy: f64 = seq.iter().map(|&t| g.nodes[t].eval_secs).sum();
            let makespan = response_time(&g, &plan, &net);
            assert!(
                makespan >= busy - 1e-9,
                "case {case}: source {source} overlapped: {dag:?}"
            );
        }
    }
}

#[test]
fn merging_never_increases_scheduled_cost() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0003);
    for case in 0..128 {
        let dag = random_dag(&mut rng);
        let g = build(&dag);
        let net = NetworkModel::mbps(1.0);
        let baseline = no_merge(&g, &net);
        let merged = merge(&g, &net, 0.2);
        assert!(
            merged.response_secs <= baseline.response_secs + 1e-9,
            "case {case}: {dag:?}"
        );
        assert!(
            merged.plan.consistent_with(&merged.graph),
            "case {case}: {dag:?}"
        );
        assert!(merged.graph.topo().is_some(), "case {case}: {dag:?}");
        // Node count shrinks by exactly the number of merges.
        assert_eq!(
            merged.graph.len(),
            g.len() - merged.merges,
            "case {case}: {dag:?}"
        );
    }
}
