//! Service equivalence suite — the promise made at the top of
//! `src/service.rs`: serving a request from a cached [`PreparedPlan`] is
//! observationally identical to running the cold one-shot pipeline.
//!
//! (a) Cached-plan executions produce byte-identical relation stores and
//!     canonical documents to cold runs for every `date` argument.
//! (b) Concurrent `run_many` batches match sequential per-request `run`
//!     loops under both schedulers and under fault injection.
//! (c) A frontier promotion updates the cache so later shallow requests are
//!     served from the deeper plan in a single round.

use aig_core::paper::{mini_hospital_catalog, sigma0};
use aig_core::spec::Aig;
use aig_datagen::HospitalConfig;
use aig_mediator::exec::{execute_graph, ExecOptions};
use aig_mediator::faults::FaultConfig;
use aig_mediator::obs::Phases;
use aig_mediator::plan::prepare;
use aig_mediator::{
    canonical, run, Mediator, MediatorOptions, NetworkModel, RetryPolicy, Scheduling,
};
use aig_relstore::Value;

const DATES: [&str; 3] = ["d1", "d2", "d9"];

fn fast_retry(max_attempts: usize) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        backoff_base_secs: 0.0001,
        backoff_cap_secs: 0.001,
        jitter: 0.5,
        timeout_secs: f64::INFINITY,
    }
}

fn assert_same_tree(aig: &Aig, warm: &aig_xml::XmlTree, cold: &aig_xml::XmlTree, context: &str) {
    assert_eq!(
        canonical(aig, warm),
        canonical(aig, cold),
        "cached-plan document differs from cold pipeline ({context})"
    );
}

/// (a) Store-level equivalence: executing one shared prepared plan with
/// different argument bindings produces byte-identical relations to
/// executing a freshly prepared plan per request.
#[test]
fn cached_plan_stores_match_cold_stores_for_every_date() {
    let aig = sigma0().unwrap();
    let catalog = mini_hospital_catalog().unwrap();
    let options = MediatorOptions::default().plan_options();
    let net = NetworkModel::default();
    let shared = prepare(&aig, &catalog, 4, &options, &net, &mut Phases::new()).unwrap();
    for date in DATES {
        let args = [("date", Value::str(date))];
        let fresh = prepare(&aig, &catalog, 4, &options, &net, &mut Phases::new()).unwrap();
        let warm = execute_graph(
            &shared.aig,
            &catalog,
            &shared.graph,
            &args,
            &ExecOptions::default(),
        )
        .unwrap();
        let cold = execute_graph(
            &fresh.aig,
            &catalog,
            &fresh.graph,
            &args,
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(shared.graph.len(), fresh.graph.len());
        for (key, &producer) in &shared.graph.producer {
            let a = warm.store.get(key).unwrap();
            let b = cold.store.get(key).unwrap();
            assert_eq!(a, b, "relation {key:?} differs on {date} (task {producer})");
            assert_eq!(
                a.byte_size(),
                b.byte_size(),
                "byte size of {key:?} differs on {date}"
            );
        }
    }
}

/// (a) Document-level equivalence through the full service path: warm
/// cache-hit requests return the same canonical document as one-shot runs.
#[test]
fn cached_plan_documents_match_cold_runs_for_every_date() {
    let aig = sigma0().unwrap();
    let catalog = mini_hospital_catalog().unwrap();
    let options = MediatorOptions::default();
    let mediator = Mediator::new(catalog.clone(), &options).unwrap();
    for (i, date) in DATES.iter().enumerate() {
        let args = [("date", Value::str(*date))];
        let (warm, report) = mediator.request(&aig, &args).unwrap();
        let cold = run(&aig, &catalog, &args, &options).unwrap();
        assert_same_tree(&aig, &warm.tree, &cold.tree, date);
        // The depth hint may serve later requests from a *deeper* plan than
        // their date strictly needs (that is the point of promotion) — the
        // document stays identical, the depth only ever grows.
        assert!(warm.depth >= cold.depth, "depth shrank on {date}");
        if i == 0 {
            assert_eq!(warm.depth, cold.depth, "cold depths differ on {date}");
            assert_eq!(warm.merges, cold.merges, "merges differ on {date}");
        } else {
            assert!(report.cache.hit, "request {i} should hit the cache");
            assert_eq!(report.unfold_rounds, 1);
        }
    }
}

/// (b) Concurrent batches equal sequential loops: both schedulers, with and
/// without fault injection, ≥ 8 concurrent requests over one cached plan.
#[test]
fn run_many_matches_sequential_loops_under_schedulers_and_faults() {
    let aig = sigma0().unwrap();
    let catalog = mini_hospital_catalog().unwrap();
    let batch: Vec<Vec<(String, Value)>> = (0..9)
        .map(|i| vec![("date".to_string(), Value::str(DATES[i % DATES.len()]))])
        .collect();
    let faults = FaultConfig {
        seed: 11,
        transient_rate: 0.2,
        latency_rate: 0.1,
        latency_secs: 0.0003,
        ..FaultConfig::default()
    };
    for scheduling in [Scheduling::Static, Scheduling::Dynamic] {
        for inject in [false, true] {
            let options = MediatorOptions::builder()
                .parallel_exec(true)
                .scheduling(scheduling)
                .faults(inject.then(|| faults.clone()))
                .retry(fast_retry(6))
                .build()
                .unwrap();
            let mediator = Mediator::new(catalog.clone(), &options).unwrap();
            let results = mediator.run_many(&aig, &batch);
            assert_eq!(results.len(), batch.len());
            for (request, result) in batch.iter().zip(results) {
                let (warm, report) = result.unwrap();
                let date = request[0].1.clone();
                let args = [("date", date)];
                let cold = run(&aig, &catalog, &args, &options).unwrap();
                let context = format!("{scheduling:?}, faults={inject}");
                assert_same_tree(&aig, &warm.tree, &cold.tree, &context);
                assert!(report.cache.enabled);
            }
            // The batch shares plans: every request after the misses is a
            // hit, and nothing was evicted.
            let stats = mediator.cache_stats();
            assert!(stats.hits + stats.misses >= batch.len() as u64, "{stats:?}");
            assert!(
                stats.hits >= (batch.len() as u64 - stats.misses),
                "{stats:?}"
            );
            assert_eq!(stats.evictions, 0, "{stats:?}");
        }
    }
}

/// (b) continued, on generated data: a larger catalog exercises the same
/// equivalence away from the paper's hand-built instance.
#[test]
fn run_many_matches_sequential_on_generated_data() {
    let aig = sigma0().unwrap();
    let data = HospitalConfig::tiny(42).generate().unwrap();
    let options = MediatorOptions::builder()
        .parallel_exec(true)
        .build()
        .unwrap();
    let mediator = Mediator::new(data.catalog.clone(), &options).unwrap();
    let batch: Vec<Vec<(String, Value)>> = data
        .dates
        .iter()
        .cycle()
        .take(8)
        .map(|d| vec![("date".to_string(), Value::str(d))])
        .collect();
    let results = mediator.run_many(&aig, &batch);
    for (request, result) in batch.iter().zip(results) {
        let (warm, _) = result.unwrap();
        let args = [("date", request[0].1.clone())];
        let cold = run(&aig, &data.catalog, &args, &options).unwrap();
        assert_same_tree(&aig, &warm.tree, &cold.tree, "generated data");
    }
}

/// (c) Promotion: after a depth-1 request climbs the frontier to depth 4,
/// a whole concurrent batch of nominally shallow requests is served from
/// the promoted plan in one round each, with output identical to cold runs.
#[test]
fn cache_promotion_serves_shallow_requests_from_the_deeper_plan() {
    let aig = sigma0().unwrap();
    let catalog = mini_hospital_catalog().unwrap();
    let options = MediatorOptions::builder().unfold_depth(1).build().unwrap();
    let mediator = Mediator::new(catalog.clone(), &options).unwrap();

    // Cold: three rounds (1 -> 2 -> 4), two promotions.
    let (first, report) = mediator
        .request(&aig, &[("date", Value::str("d1"))])
        .unwrap();
    assert_eq!(first.depth, 4);
    assert_eq!(report.unfold_rounds, 3);
    assert_eq!(mediator.cache_stats().promotions, 2);

    // Warm batch: every request starts at the promoted depth — one round,
    // cache hit, same document as the cold pipeline.
    let batch: Vec<Vec<(String, Value)>> = (0..8)
        .map(|i| vec![("date".to_string(), Value::str(DATES[i % DATES.len()]))])
        .collect();
    let results = mediator.run_many(&aig, &batch);
    for (request, result) in batch.iter().zip(results) {
        let (warm, report) = result.unwrap();
        assert_eq!(warm.depth, 4);
        assert_eq!(report.unfold_rounds, 1, "promotion hint was not used");
        assert!(report.cache.hit);
        let args = [("date", request[0].1.clone())];
        let cold = run(&aig, &catalog, &args, &options).unwrap();
        assert_same_tree(&aig, &warm.tree, &cold.tree, "promoted plan");
    }
}

/// The heterogeneous driver: `serve` keys the cache by AIG fingerprint, so
/// two separately built but structurally identical AIGs share one plan.
#[test]
fn serve_caches_plans_per_aig() {
    let aig_a = sigma0().unwrap();
    let aig_b = sigma0().unwrap(); // same structure: same fingerprint
    assert_eq!(aig_a.fingerprint(), aig_b.fingerprint());
    let catalog = mini_hospital_catalog().unwrap();
    let options = MediatorOptions::builder().unfold_depth(4).build().unwrap();
    let mediator = Mediator::new(catalog, &options).unwrap();
    let requests: Vec<(&Aig, Vec<(String, Value)>)> = (0..8)
        .map(|i| {
            let aig = if i % 2 == 0 { &aig_a } else { &aig_b };
            (aig, vec![("date".to_string(), Value::str(DATES[i % 3]))])
        })
        .collect();
    let results = mediator.serve(&requests);
    assert!(results.iter().all(|r| r.is_ok()));
    // Identical fingerprints share one cache entry: exactly one miss.
    let stats = mediator.cache_stats();
    assert_eq!(stats.misses, 1, "{stats:?}");
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.hits, 7);
}
