//! Regression test for wire-size memoization at the mediator level: the
//! merge search and the scheduler consult relation sizes over and over
//! (every candidate merge re-prices every edge), so `Relation::wire_bytes`
//! / `byte_size` must scan a payload **once** and answer from the memo
//! afterwards. This file holds a single `#[test]` on purpose — the scan
//! counter is process-global, and a sibling test running concurrently in
//! the same binary would pollute the deltas.

use aig_core::paper::{mini_hospital_catalog, sigma0};
use aig_core::{compile_constraints, decompose_queries};
use aig_mediator::cost::{measured_costs, response_time, CostGraph};
use aig_mediator::exec::{execute_graph, ExecOptions};
use aig_mediator::graph::{build_graph, GraphOptions};
use aig_mediator::schedule::schedule;
use aig_mediator::unfold::{unfold, CutOff};
use aig_mediator::{run_with_report, MediatorOptions, NetworkModel};
use aig_relstore::{payload_scans, Value};

#[test]
fn repeated_merge_and_schedule_queries_never_rescan_payloads() {
    let aig = sigma0().unwrap();
    let catalog = mini_hospital_catalog().unwrap();
    let compiled = compile_constraints(&aig).unwrap();
    let (specialized, _) = decompose_queries(&compiled).unwrap();
    let unfolded = unfold(&specialized, 3, CutOff::Truncate).unwrap();
    let graph = build_graph(&unfolded.aig, &catalog, &GraphOptions::default()).unwrap();
    let args = [("date", Value::str("d1"))];
    let exec = execute_graph(
        &unfolded.aig,
        &catalog,
        &graph,
        &args,
        &ExecOptions::default(),
    )
    .unwrap();

    // Execution shipped every output, which prices it — so the sizes are
    // already memoized by the time planning would re-ask.
    let outputs: Vec<_> = graph
        .tasks
        .iter()
        .filter_map(|t| t.output.as_ref())
        .map(|key| exec.store.get(key).unwrap())
        .collect();
    assert!(!outputs.is_empty());
    for rel in &outputs {
        assert!(
            rel.sizes_memoized(),
            "shipping should have priced this output already"
        );
    }

    // The hot loop the memo exists for: repeated cost/merge/schedule
    // pricing over the same store. Not one additional payload scan.
    let net = NetworkModel::mbps(8.0);
    let before = payload_scans();
    for _ in 0..50 {
        let _wire: usize = outputs.iter().map(|r| r.wire_bytes()).sum();
        let _raw: usize = outputs.iter().map(|r| r.byte_size()).sum();
        let costs = measured_costs(&graph, &exec.measured, 0.001, 1.0);
        let cg = CostGraph::from_task_graph(&graph, &costs);
        let plan = schedule(&cg, &net);
        let _ = response_time(&cg, &plan, &net);
    }
    assert_eq!(
        payload_scans() - before,
        0,
        "planning queries rescanned payloads despite the memo"
    );

    // Full-pipeline bound: a complete mediator run (merge search included)
    // builds each relation once and may price its pruned ship image
    // separately, but must stay linear in the number of relations — a
    // quadratic merge search that rescans per candidate would blow far
    // past this.
    let options = MediatorOptions::builder().merging(true).build().unwrap();
    let before_run = payload_scans();
    let (_, report) = run_with_report(&aig, &catalog, &args, &options).unwrap();
    let first_run = payload_scans() - before_run;
    let before_rerun = payload_scans();
    let (_, rerun) = run_with_report(&aig, &catalog, &args, &options).unwrap();
    let second_run = payload_scans() - before_rerun;
    assert_eq!(report.tasks.len(), rerun.tasks.len());
    let ceiling = 4 * report.tasks.len() as u64 + 8;
    assert!(
        first_run <= ceiling && second_run <= ceiling,
        "mediator run scanned payloads {first_run} / {second_run} times for {} tasks \
         (ceiling {ceiling}); the merge/schedule path is rescanning",
        report.tasks.len()
    );
}
