//! Byte-identity oracle for streaming batch execution: across the matrix
//! {batching on/off} × {sequential, parallel} × {Static, Dynamic} ×
//! {1, 4 threads} × {faults on/off}, relation stores and canonical
//! documents must be **byte-identical** to the materializing baseline —
//! chunked shipment changes *when rows cross the ship seam*, never what
//! arrives. On top of identity, the shipment ledger must do what the
//! design claims: under batching, peak resident shipment rows are bounded
//! by the double-buffer window (2 × batch_rows per concurrently shipping
//! task), not by the largest relation.

use aig_core::paper::{mini_hospital_catalog, sigma0};
use aig_core::spec::Aig;
use aig_core::{compile_constraints, decompose_queries};
use aig_mediator::exec::{execute_graph, ExecOptions, ExecResult, Scheduling};
use aig_mediator::faults::{FaultConfig, FaultPlan, RetryPolicy};
use aig_mediator::graph::{build_graph, GraphOptions, TaskGraph};
use aig_mediator::parallel::execute_graph_parallel;
use aig_mediator::tagging::tag_document;
use aig_mediator::unfold::{unfold, CutOff};
use aig_mediator::{canonical, run_with_report, MediatorOptions, ShipCut};
use aig_relstore::{Catalog, SourceId, Value};
use aig_xml::XmlTree;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

struct Fixture {
    aig: Aig,
    graph: TaskGraph,
    catalog: Catalog,
    date: String,
}

fn fixture(seed: u64) -> Fixture {
    let data = aig_datagen::HospitalConfig::tiny(seed).generate().unwrap();
    let aig = sigma0().unwrap();
    let compiled = compile_constraints(&aig).unwrap();
    let (specialized, _) = decompose_queries(&compiled).unwrap();
    let unfolded = unfold(&specialized, 3, CutOff::Truncate).unwrap();
    let graph = build_graph(&unfolded.aig, &data.catalog, &GraphOptions::default()).unwrap();
    Fixture {
        aig: unfolded.aig,
        graph,
        catalog: data.catalog,
        date: data.dates[0].clone(),
    }
}

fn topo_plan(graph: &TaskGraph) -> HashMap<SourceId, Vec<usize>> {
    let mut per_source: HashMap<SourceId, Vec<usize>> = HashMap::new();
    for &id in &graph.topo {
        per_source
            .entry(graph.tasks[id].source)
            .or_default()
            .push(id);
    }
    per_source
}

fn run_cell(fx: &Fixture, opts: &ExecOptions, parallel: bool) -> (ExecResult, XmlTree) {
    let args = [("date", Value::str(&fx.date))];
    let result = if parallel {
        execute_graph_parallel(
            &fx.aig,
            &fx.catalog,
            &fx.graph,
            &args,
            opts,
            &topo_plan(&fx.graph),
        )
        .unwrap()
    } else {
        execute_graph(&fx.aig, &fx.catalog, &fx.graph, &args, opts).unwrap()
    };
    let tree = tag_document(&fx.aig, &fx.graph, &result.store).unwrap();
    (result, tree)
}

fn assert_identical(
    fx: &Fixture,
    base: &(ExecResult, XmlTree),
    cell: &(ExecResult, XmlTree),
    what: &str,
) {
    assert_eq!(base.1, cell.1, "document drifted: {what}");
    for task in &fx.graph.tasks {
        if let Some(key) = &task.output {
            assert_eq!(
                base.0.store.get(key).unwrap(),
                cell.0.store.get(key).unwrap(),
                "relation of {} drifted: {what}",
                task.label
            );
        }
    }
}

fn fault_opts(opts: &mut ExecOptions, fx: &Fixture, seed: u64) {
    let cfg = FaultConfig {
        seed,
        transient_rate: 0.15,
        latency_rate: 0.1,
        latency_secs: 0.0002,
        ..FaultConfig::default()
    };
    opts.faults = Some(FaultPlan::new(&cfg, &fx.catalog).unwrap());
    opts.policy.retry = RetryPolicy {
        max_attempts: 6,
        backoff_base_secs: 0.0001,
        backoff_cap_secs: 0.001,
        jitter: 0.5,
        timeout_secs: f64::INFINITY,
    };
}

const BATCH_ROWS: usize = 2;

/// Sources that ship at least one task output — the ceiling on tasks
/// shipping concurrently (the parallel executor runs one worker per
/// source), hence on the double-buffer windows open at once.
fn shipping_sources(graph: &TaskGraph) -> usize {
    let sources: HashSet<SourceId> = graph
        .tasks
        .iter()
        .filter(|t| t.output.is_some())
        .map(|t| t.source)
        .collect();
    sources.len()
}

#[test]
fn streaming_matrix_is_byte_identical_to_the_materializing_baseline() {
    for seed in [11u64, 0xFEED] {
        let fx = fixture(seed);
        let shipcut = Arc::new(ShipCut::analyze(&fx.aig, &fx.graph));
        let baseline = run_cell(&fx, &ExecOptions::default(), false);
        let workers = shipping_sources(&fx.graph);

        for prune in [false, true] {
            for threads in [1usize, 4] {
                for faults in [false, true] {
                    let mut opts = ExecOptions::default()
                        .with_threads(threads)
                        .with_batching(true, BATCH_ROWS);
                    opts.shipcut = prune.then(|| shipcut.clone());
                    if faults {
                        fault_opts(&mut opts, &fx, seed ^ 0xA5);
                    }
                    let what =
                        format!("seed {seed} prune={prune} threads={threads} faults={faults}");

                    let seq = run_cell(&fx, &opts, false);
                    assert_identical(&fx, &baseline, &seq, &format!("{what} sequential"));
                    // Sequential execution ships one output at a time: the
                    // double-buffer window bounds residency at 2 batches.
                    assert!(seq.0.batch.enabled);
                    assert_eq!(seq.0.batch.batch_rows, BATCH_ROWS);
                    assert!(
                        seq.0.batch.peak_resident_rows <= 2 * BATCH_ROWS as u64,
                        "sequential peak {} exceeds the double-buffer window: {what}",
                        seq.0.batch.peak_resident_rows
                    );
                    if !faults {
                        let per_task: u64 = seq.0.measured.iter().map(|m| m.batches).sum();
                        assert_eq!(
                            seq.0.batch.total_batches, per_task,
                            "ledger and per-task batch counts disagree: {what}"
                        );
                    }

                    for scheduling in [Scheduling::Static, Scheduling::Dynamic] {
                        let opts = opts.clone().with_scheduling(scheduling);
                        let par = run_cell(&fx, &opts, true);
                        assert_identical(
                            &fx,
                            &baseline,
                            &par,
                            &format!("{what} parallel {scheduling:?}"),
                        );
                        // One worker per source: at most `workers` outputs
                        // ship concurrently, each inside its window.
                        assert!(
                            par.0.batch.peak_resident_rows <= (2 * BATCH_ROWS * workers) as u64,
                            "parallel peak {} exceeds {} windows: {what} {scheduling:?}",
                            par.0.batch.peak_resident_rows,
                            workers
                        );
                    }
                }
            }
        }
    }
}

/// Batching genuinely bounds residency: on a relation much larger than the
/// batch size, the materializing seam holds the whole relation while the
/// batched seam never holds more than two batches.
#[test]
fn batching_bounds_peak_residency_below_materializing() {
    let fx = fixture(4242);
    let materializing = run_cell(&fx, &ExecOptions::default(), false);
    let largest = fx
        .graph
        .tasks
        .iter()
        .filter_map(|t| t.output.as_ref())
        .map(|key| materializing.0.store.get(key).unwrap().len())
        .max()
        .unwrap();
    assert!(
        largest > 2 * BATCH_ROWS,
        "fixture too small ({largest} rows) to exercise the bound"
    );
    assert!(
        materializing.0.batch.peak_resident_rows >= largest as u64,
        "materializing seam must hold the largest relation in full"
    );
    let batched = run_cell(
        &fx,
        &ExecOptions::default().with_batching(true, BATCH_ROWS),
        false,
    );
    assert!(
        batched.0.batch.peak_resident_rows < materializing.0.batch.peak_resident_rows,
        "batched peak {} not below materializing peak {}",
        batched.0.batch.peak_resident_rows,
        materializing.0.batch.peak_resident_rows
    );
}

/// The full pipeline honors the knob end to end: `MediatorOptions.batching`
/// flows through plan/execute, the canonical document is byte-identical to
/// the materializing run, and the run report carries the ledger.
#[test]
fn pipeline_batching_produces_identical_documents_and_a_ledger() {
    let aig = sigma0().unwrap();
    let catalog = mini_hospital_catalog().unwrap();
    let args = [("date", Value::str("d1"))];

    let base_opts = MediatorOptions::default();
    let (base_run, base_report) = run_with_report(&aig, &catalog, &args, &base_opts).unwrap();
    assert!(!base_report.batching.enabled);
    assert_eq!(base_report.batching.batch_rows, 0);
    assert_eq!(base_report.batching.overlap_savings_secs, 0.0);

    for parallel in [false, true] {
        for scheduling in [Scheduling::Static, Scheduling::Dynamic] {
            let options = MediatorOptions::builder()
                .batching(true)
                .batch_rows(2)
                .parallel_exec(parallel)
                .scheduling(scheduling)
                .build()
                .unwrap();
            let (run, report) = run_with_report(&aig, &catalog, &args, &options).unwrap();
            assert_eq!(
                canonical(&aig, &run.tree),
                canonical(&aig, &base_run.tree),
                "document drifted under batching: parallel={parallel} {scheduling:?}"
            );
            assert!(report.batching.enabled);
            assert_eq!(report.batching.batch_rows, 2);
            assert!(report.batching.total_batches > 0);
            assert!(report.batching.peak_resident_rows > 0);
            // Redaction zeroes the wall-derived estimate but keeps the
            // deterministic counts.
            let redacted = report.redacted();
            assert_eq!(redacted.batching.overlap_savings_secs, 0.0);
            assert_eq!(
                redacted.batching.total_batches,
                report.batching.total_batches
            );
            // Per-task batch counts surface in the report.
            assert!(report.tasks.iter().any(|t| t.batches > 1));
        }
    }
}
