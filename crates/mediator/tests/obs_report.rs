//! Tests for the observability layer: phase timers, per-task and catalog
//! byte accounting, JSON round-tripping, and merge-decision consistency.

use aig_core::paper::{mini_hospital_catalog, sigma0};
use aig_core::{compile_constraints, decompose_queries};
use aig_datagen::HospitalConfig;
use aig_mediator::exec::{execute_graph, ExecOptions};
use aig_mediator::graph::{build_graph, GraphOptions};
use aig_mediator::json;
use aig_mediator::unfold::{unfold, CutOff};
use aig_mediator::{run_with_report, MediatorOptions, NetworkModel, RunReport};
use aig_relstore::Value;

/// Options whose simulated costs do not depend on wall-clock measurements:
/// every source query costs exactly the per-query overhead.
fn det_options(depth: usize) -> MediatorOptions {
    let mut options = MediatorOptions {
        unfold_depth: depth,
        max_depth: depth,
        cutoff: CutOff::Truncate,
        network: NetworkModel::mbps(1.0),
        ..MediatorOptions::default()
    };
    options.graph.eval_scale = 0.0;
    options.graph.cost_model.per_query_overhead_secs = 1.0;
    options
}

fn tiny_report(seed: u64, options: &MediatorOptions) -> (aig_mediator::MediatorRun, RunReport) {
    let data = HospitalConfig::tiny(seed).generate().unwrap();
    let aig = sigma0().unwrap();
    let args = [("date", Value::str(&data.dates[0]))];
    run_with_report(&aig, &data.catalog, &args, options).unwrap()
}

#[test]
fn phase_timers_are_monotone_and_cover_the_run() {
    let (_, report) = tiny_report(1, &det_options(3));
    assert!(report.phases.len() >= 8, "phases: {:?}", report.phases);
    let mut prev = -1.0;
    for phase in &report.phases {
        assert!(
            phase.first_start_secs >= prev,
            "phase {} starts before its predecessor",
            phase.name
        );
        prev = phase.first_start_secs;
        assert!(phase.secs >= 0.0);
        assert!(phase.calls >= 1);
        assert!(
            phase.first_start_secs + phase.secs <= report.total_secs + 1e-6,
            "phase {} runs past the end of the run",
            phase.name
        );
    }
    let sum = report.phase_secs_total();
    assert!(
        sum <= report.total_secs * 1.0001 + 1e-9,
        "phase sum {sum} exceeds total {}",
        report.total_secs
    );
    assert!(
        sum >= report.total_secs * 0.95,
        "phase timers cover only {:.1}% of the run",
        100.0 * sum / report.total_secs
    );
}

#[test]
fn per_task_bytes_match_relation_sizes() {
    let aig = sigma0().unwrap();
    let compiled = compile_constraints(&aig).unwrap();
    let (specialized, _) = decompose_queries(&compiled).unwrap();
    let unfolded = unfold(&specialized, 3, CutOff::Truncate).unwrap();
    let data = HospitalConfig::tiny(3).generate().unwrap();
    let graph = build_graph(&unfolded.aig, &data.catalog, &GraphOptions::default()).unwrap();
    let exec = execute_graph(
        &unfolded.aig,
        &data.catalog,
        &graph,
        &[("date", Value::str(&data.dates[0]))],
        &ExecOptions::default(),
    )
    .unwrap();
    // Each producing task's Measured matches its relation exactly.
    let mut produced = 0;
    for (key, &producer) in &graph.producer {
        let rel = exec.store.get(key).unwrap();
        let m = &exec.measured[producer];
        assert_eq!(m.out_rows, rel.len() as f64, "out_rows of {key:?}");
        assert_eq!(m.out_bytes, rel.byte_size() as f64, "out_bytes of {key:?}");
        produced += 1;
    }
    assert!(produced > 0);
}

#[test]
fn report_catalog_and_shipped_bytes_are_consistent() {
    let data = HospitalConfig::tiny(3).generate().unwrap();
    let aig = sigma0().unwrap();
    let args = [("date", Value::str(&data.dates[0]))];
    let (_, report) = run_with_report(&aig, &data.catalog, &args, &det_options(3)).unwrap();

    // The catalog section mirrors the real relation sizes.
    assert!(!report.catalog.is_empty());
    for entry in &report.catalog {
        let sid = data.catalog.source_id(&entry.source).unwrap();
        let table = data.catalog.source(sid).table(&entry.table).unwrap();
        assert_eq!(entry.rows, table.len(), "{}.{}", entry.source, entry.table);
        assert_eq!(
            entry.bytes,
            table.byte_size(),
            "{}.{}",
            entry.source,
            entry.table
        );
    }

    // Shipped bytes are a whole multiple of the *ship image* (one copy per
    // distinct cross-source consumer) — the image never exceeds the full
    // output's wire size (ship-cut only prunes, and the dictionary encoding
    // is monotone under pruning), and zero output ships nothing.
    for task in &report.tasks {
        assert!(
            task.ship_bytes <= task.wire_bytes,
            "task {} ship image grew: {} > {}",
            task.id,
            task.ship_bytes,
            task.wire_bytes
        );
        if task.ship_bytes > 0.0 {
            let copies = task.shipped_bytes / task.ship_bytes;
            assert!(
                (copies - copies.round()).abs() < 1e-9,
                "task {} ships {} bytes from a {} byte image",
                task.id,
                task.shipped_bytes,
                task.ship_bytes
            );
        } else {
            assert_eq!(task.shipped_bytes, 0.0, "task {}", task.id);
        }
    }
    // Ship-cut actually engaged on this workload.
    assert!(report.shipcut.enabled);
    assert!(
        report.shipcut.saved_bytes > 0.0,
        "no shipment was pruned on the datagen workload"
    );
    assert!(report.shipcut.pruned_tasks > 0);
}

#[test]
fn json_report_round_trips_through_its_own_output() {
    let (_, report) = tiny_report(2, &det_options(3));
    let value = report.to_json();
    let pretty = json::parse(&value.to_pretty()).unwrap();
    assert_eq!(pretty, value, "pretty round-trip changed the report");
    let compact = json::parse(&value.to_compact()).unwrap();
    assert_eq!(compact, value, "compact round-trip changed the report");
}

/// Schema v6 round-trip: a report with a *populated* integrity ledger
/// reaches a serialization fixpoint (encode → decode → encode is identity),
/// and a fault seed above 2^53 — unrepresentable as an f64-backed JSON
/// number — survives losslessly through the decimal-string path.
#[test]
fn json_v6_reaches_a_fixpoint_with_integrity_ledger_and_big_seed() {
    let catalog = mini_hospital_catalog().unwrap();
    let aig = sigma0().unwrap();
    let args = [("date", Value::str("d1"))];
    let seed = (1u64 << 60) + 7; // 1152921504606846983 > 2^53
    let mut options = det_options(3);
    options.check_integrity = true;
    options.faults = Some(aig_mediator::faults::FaultConfig {
        seed,
        corrupt_rate: 0.6,
        ..Default::default()
    });
    options.retry = aig_mediator::faults::RetryPolicy {
        max_attempts: 6,
        backoff_base_secs: 0.0001,
        backoff_cap_secs: 0.001,
        jitter: 0.5,
        timeout_secs: f64::INFINITY,
    };
    let (_, report) = run_with_report(&aig, &catalog, &args, &options).unwrap();
    assert_eq!(report.schema_version, aig_mediator::SCHEMA_VERSION);
    assert!(
        report.integrity.injected > 0,
        "fixture injected no corruption — the ledger round-trip is vacuous"
    );

    let value = report.to_json();
    let pretty = value.to_pretty();
    let decoded = json::parse(&pretty).unwrap();
    assert_eq!(decoded, value, "decode changed the report");
    assert_eq!(
        decoded.to_pretty(),
        pretty,
        "pretty encoding is not a fixpoint"
    );
    let compact = value.to_compact();
    assert_eq!(
        json::parse(&compact).unwrap().to_compact(),
        compact,
        "compact encoding is not a fixpoint"
    );

    // The seed exceeds 2^53: as a JSON number it would round, so it travels
    // as a decimal string and must parse back to the exact u64.
    assert_ne!(
        seed as f64 as u64, seed,
        "seed must exercise the string path"
    );
    let emitted = decoded
        .get("resilience")
        .and_then(|r| r.get("seed"))
        .and_then(|s| s.as_str())
        .expect("seed must be a string");
    assert_eq!(emitted.parse::<u64>().unwrap(), seed);

    // The decoded integrity section mirrors the in-memory ledger.
    let integrity = decoded.get("integrity").expect("v6 carries integrity");
    assert_eq!(
        integrity.get("enabled").and_then(|v| v.as_bool()),
        Some(true)
    );
    assert_eq!(
        integrity.get("balanced").and_then(|v| v.as_bool()),
        Some(true)
    );
    for (field, expect) in [
        ("injected", report.integrity.injected),
        ("masked_by_retry", report.integrity.masked_by_retry),
        ("detected_by_guard", report.integrity.detected_by_guard),
        (
            "detected_by_constraint",
            report.integrity.detected_by_constraint,
        ),
        ("undetected", report.integrity.undetected),
    ] {
        assert_eq!(
            integrity.get(field).and_then(|v| v.as_f64()),
            Some(expect as f64),
            "{field}"
        );
    }
    let events = integrity
        .get("events")
        .and_then(|v| v.as_arr())
        .expect("events array");
    assert_eq!(events.len(), report.integrity.events.len());
    for (json_event, event) in events.iter().zip(&report.integrity.events) {
        assert_eq!(
            json_event.get("kind").and_then(|v| v.as_str()),
            Some(event.kind.as_str())
        );
        assert_eq!(
            json_event.get("outcome").and_then(|v| v.as_str()),
            Some(event.outcome.as_str())
        );
        assert_eq!(
            json_event.get("constraint").and_then(|v| v.as_str()),
            Some(event.constraint.as_str())
        );
    }
}

/// Non-integral byte counts survive the JSON round trip exactly. Estimated
/// and dictionary-amortized sizes are genuine fractions (an estimate-phase
/// edge ships 130.1 B); `Json::num` must emit the shortest round-tripping
/// decimal for them — not a rounded integer — and re-parsing must reach a
/// fixpoint bit-for-bit.
#[test]
fn json_non_integral_ship_bytes_reach_a_fixpoint() {
    let (_, mut report) = tiny_report(4, &det_options(2));
    assert!(!report.tasks.is_empty());
    // Perturb every task's wire accounting into non-integral territory,
    // keeping the ship ≤ wire invariant intact.
    for (i, task) in report.tasks.iter_mut().enumerate() {
        task.ship_bytes += 0.1 + (i as f64) * 0.001;
        task.wire_bytes = task.wire_bytes.max(task.ship_bytes) + 0.25;
    }
    let value = report.to_json();
    let pretty = value.to_pretty();
    let decoded = json::parse(&pretty).unwrap();
    assert_eq!(decoded, value, "decode changed the report");
    assert_eq!(
        decoded.to_pretty(),
        pretty,
        "pretty encoding is not a fixpoint"
    );
    let compact = value.to_compact();
    assert_eq!(
        json::parse(&compact).unwrap().to_compact(),
        compact,
        "compact encoding is not a fixpoint"
    );
    // Bit-for-bit: every decoded ship/wire figure equals the in-memory f64.
    let tasks = decoded
        .get("tasks")
        .and_then(|v| v.as_arr())
        .expect("tasks array");
    assert_eq!(tasks.len(), report.tasks.len());
    for (json_task, task) in tasks.iter().zip(&report.tasks) {
        for (field, expect) in [
            ("ship_bytes", task.ship_bytes),
            ("wire_bytes", task.wire_bytes),
        ] {
            let got = json_task.get(field).and_then(|v| v.as_f64()).unwrap();
            assert_eq!(got.to_bits(), expect.to_bits(), "{field} drifted");
        }
    }
    // The emitted text really carries fractional literals.
    assert!(
        compact.contains(".1") || compact.contains(".25"),
        "no fractional byte count was emitted"
    );
}

/// Schema v7 round-trip: a report with a *populated* server section (the
/// overload server's ledgers and percentiles) reaches a serialization
/// fixpoint, and the server seed — above 2^53 like the fault seed — travels
/// losslessly through the decimal-string path.
#[test]
fn json_v7_reaches_a_fixpoint_with_server_ledgers_and_big_seed() {
    let seed = (1u64 << 61) + 11; // > 2^53: unrepresentable as f64
    let server = aig_mediator::ServerObs {
        enabled: true,
        seed,
        offered: 120,
        admitted: 100,
        rejected: 20,
        rejected_queue: 12,
        rejected_in_flight: 3,
        rejected_tenant: 5,
        completed: 70,
        deadline_exceeded: 14,
        degraded: 9,
        failed: 7,
        breaker_trips: 4,
        breaker_probes: 6,
        breaker_closes: 3,
        max_queue_depth: 17,
        max_in_flight: 4,
        p50_secs: 0.125,
        p95_secs: 0.75,
        p99_secs: 1.5,
        balanced: true,
    };
    let report = RunReport::server_summary(server.clone());
    assert_eq!(report.schema_version, aig_mediator::SCHEMA_VERSION);
    assert_eq!(report.server, server);

    let value = report.to_json();
    let pretty = value.to_pretty();
    let decoded = json::parse(&pretty).unwrap();
    assert_eq!(decoded, value, "decode changed the report");
    assert_eq!(
        decoded.to_pretty(),
        pretty,
        "pretty encoding is not a fixpoint"
    );
    let compact = value.to_compact();
    assert_eq!(
        json::parse(&compact).unwrap().to_compact(),
        compact,
        "compact encoding is not a fixpoint"
    );

    assert_eq!(
        decoded.get("schema_version").and_then(|v| v.as_f64()),
        Some(aig_mediator::SCHEMA_VERSION as f64)
    );
    let section = decoded.get("server").expect("v7 carries a server section");
    assert_eq!(section.get("enabled").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        section.get("balanced").and_then(|v| v.as_bool()),
        Some(true)
    );
    let emitted = section
        .get("seed")
        .and_then(|s| s.as_str())
        .expect("server seed must be a string");
    assert_ne!(
        seed as f64 as u64, seed,
        "seed must exercise the string path"
    );
    assert_eq!(emitted.parse::<u64>().unwrap(), seed);
    for (field, expect) in [
        ("offered", server.offered),
        ("admitted", server.admitted),
        ("rejected", server.rejected),
        ("rejected_queue", server.rejected_queue),
        ("rejected_in_flight", server.rejected_in_flight),
        ("rejected_tenant", server.rejected_tenant),
        ("completed", server.completed),
        ("deadline_exceeded", server.deadline_exceeded),
        ("degraded", server.degraded),
        ("failed", server.failed),
        ("breaker_trips", server.breaker_trips),
        ("breaker_probes", server.breaker_probes),
        ("breaker_closes", server.breaker_closes),
        ("max_queue_depth", server.max_queue_depth as u64),
        ("max_in_flight", server.max_in_flight as u64),
    ] {
        assert_eq!(
            section.get(field).and_then(|v| v.as_f64()),
            Some(expect as f64),
            "{field}"
        );
    }
    for (field, expect) in [
        ("p50_secs", server.p50_secs),
        ("p95_secs", server.p95_secs),
        ("p99_secs", server.p99_secs),
    ] {
        assert_eq!(
            section.get(field).and_then(|v| v.as_f64()),
            Some(expect),
            "{field}"
        );
    }

    // Both ledger identities hold on the fixture — mirroring the invariant
    // the server's `finish` computes `balanced` from.
    assert_eq!(server.offered, server.admitted + server.rejected);
    assert_eq!(
        server.admitted,
        server.completed + server.deadline_exceeded + server.degraded + server.failed
    );

    // The rendered report surfaces the server section.
    let text = aig_mediator::render_report(&report);
    assert!(text.contains("server (seed"), "{text}");
    assert!(text.contains("breakers: 4 trips"), "{text}");
    assert!(text.contains("p95 0.750s"), "{text}");
}

#[test]
fn merge_decisions_agree_with_the_outcome() {
    let (run, report) = tiny_report(1, &det_options(4));
    assert!(run.merges > 0, "fixture produced no merges");
    assert_eq!(report.merges, run.merges);
    assert_eq!(report.merge_decisions.len(), run.merges);
    assert_eq!(
        report.sim_response_unmerged_secs,
        run.response_unmerged_secs
    );
    assert_eq!(report.sim_response_merged_secs, run.response_merged_secs);
    for decision in &report.merge_decisions {
        assert!(!decision.kept.is_empty());
        assert!(!decision.absorbed.is_empty());
        assert!(decision.kept.iter().all(|t| !decision.absorbed.contains(t)));
        assert!(
            decision.cost_after_secs < decision.cost_before_secs,
            "merge at @{} did not improve the plan",
            decision.source
        );
    }
    let last = report.merge_decisions.last().unwrap();
    assert_eq!(last.cost_after_secs, report.sim_response_merged_secs);
    assert!(report.sim_response_merged_secs <= report.sim_response_unmerged_secs);
}

#[test]
fn parallel_report_records_waits_and_matches_sequential() {
    let catalog = mini_hospital_catalog().unwrap();
    let aig = sigma0().unwrap();
    let args = [("date", Value::str("d1"))];
    let options = det_options(2);
    let (seq_run, seq_report) = run_with_report(&aig, &catalog, &args, &options).unwrap();
    assert!(!seq_report.parallel_exec);
    assert!(seq_report.tasks.iter().all(|t| t.wait_secs == 0.0));

    let par_options = MediatorOptions {
        parallel_exec: true,
        ..options
    };
    let (par_run, par_report) = run_with_report(&aig, &catalog, &args, &par_options).unwrap();
    assert!(par_report.parallel_exec);
    assert_eq!(seq_run.tree, par_run.tree);
    for task in &par_report.tasks {
        assert!(task.wait_secs >= 0.0 && task.wait_secs.is_finite());
        assert!(task.start_secs >= 0.0);
    }
    for (a, b) in seq_report.tasks.iter().zip(&par_report.tasks) {
        assert_eq!(a.out_bytes, b.out_bytes);
        assert_eq!(a.out_rows, b.out_rows);
        assert_eq!(a.in_rows, b.in_rows);
        assert_eq!(a.sim_eval_secs, b.sim_eval_secs);
    }
}
