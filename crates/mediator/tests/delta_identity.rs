//! Byte-identity conformance for incremental re-evaluation: across the
//! matrix {sequential, parallel} × {Static, Dynamic} × {batching on/off}
//! × {faults off / transient+latency}, a request served incrementally
//! after a source delta must produce a document **byte-identical** to a
//! cold full run of a fresh mediator over the post-delta catalog — the
//! re-run subgraph, the splice, and the subtree retag change *how much
//! work* a request does, never what it answers. The full
//! `ConstraintSet::check` over the incremental document is the
//! independent oracle on top of the scoped check the path runs itself.
//!
//! Mid-run outage faults (`dies_after`) are deliberately absent from the
//! fault cells: they trigger on global per-source completion counts, so
//! the service routes them to the full path (covered by
//! `mid_run_outage_plans_bypass_snapshots` below).

use aig_core::paper::sigma0;
use aig_core::spec::Aig;
use aig_datagen::{cover_delta, visit_delta, HospitalConfig};
use aig_mediator::exec::Scheduling;
use aig_mediator::faults::{FaultConfig, RetryPolicy};
use aig_mediator::{Mediator, MediatorOptions};
use aig_relstore::{Catalog, SourceDelta, Value};

struct Fixture {
    aig: Aig,
    catalog: Catalog,
    date: String,
}

fn fixture(seed: u64) -> Fixture {
    let data = HospitalConfig::tiny(seed).generate().unwrap();
    Fixture {
        aig: sigma0().unwrap(),
        date: data.dates[0].clone(),
        catalog: data.catalog,
    }
}

fn options(
    parallel: bool,
    scheduling: Scheduling,
    batching: bool,
    faults: bool,
) -> MediatorOptions {
    let mut builder = MediatorOptions::builder()
        .unfold_depth(3)
        .incremental(true)
        .parallel_exec(parallel)
        .scheduling(scheduling)
        .batching(batching)
        .batch_rows(2);
    if faults {
        builder = builder
            .faults(Some(FaultConfig {
                seed: 7,
                transient_rate: 0.15,
                latency_rate: 0.1,
                latency_secs: 0.0002,
                ..FaultConfig::default()
            }))
            .retry(RetryPolicy {
                max_attempts: 6,
                backoff_base_secs: 0.0001,
                backoff_cap_secs: 0.001,
                jitter: 0.5,
                timeout_secs: f64::INFINITY,
            });
    }
    builder.build().unwrap()
}

/// The delta sequence of one cell: single-table deltas alternating between
/// the two mutable tables, built against the mediator's *current* catalog
/// so inserts stay fresh and deletes hit present rows.
fn next_delta(catalog: &Catalog, date: &str, step: usize) -> SourceDelta {
    match step % 2 {
        0 => visit_delta(catalog, date, 3, 2, 100 + step as u64).unwrap(),
        _ => cover_delta(catalog, 2, 1, 200 + step as u64).unwrap(),
    }
}

fn assert_cell(parallel: bool, scheduling: Scheduling, batching: bool, faults: bool) {
    let fx = fixture(11);
    let opts = options(parallel, scheduling, batching, faults);
    let mut mediator = Mediator::new(fx.catalog.clone(), &opts).unwrap();
    let args = [("date", Value::str(&fx.date))];
    let cell = format!(
        "parallel={parallel} scheduling={scheduling:?} batching={batching} faults={faults}"
    );

    // Cold run: the ledger is on, but there is no snapshot to splice.
    let (_, cold) = mediator.request(&fx.aig, &args).unwrap();
    assert!(cold.incremental.enabled, "{cell}");
    assert!(!cold.incremental.snapshot_hit, "{cell}");
    assert_eq!(
        cold.incremental.tasks_rerun, cold.incremental.tasks_total,
        "{cell}"
    );

    for step in 0..2 {
        let delta = next_delta(mediator.catalog(), &fx.date, step);
        let applied = mediator.apply_delta(&delta).unwrap();
        assert!(applied.inserted + applied.deleted > 0, "{cell} step {step}");

        let (incr, report) = mediator.request(&fx.aig, &args).unwrap();
        assert!(
            report.incremental.snapshot_hit,
            "{cell} step {step}: no snapshot hit"
        );
        assert!(
            report.incremental.tasks_rerun > 0,
            "{cell} step {step}: delta touched nothing"
        );
        assert!(
            report.incremental.tasks_rerun < report.incremental.tasks_total,
            "{cell} step {step}: single-table delta re-ran the whole graph \
             ({}/{})",
            report.incremental.tasks_rerun,
            report.incremental.tasks_total
        );

        // Oracle 1: byte-identity against a cold full run of a *fresh*
        // mediator over the post-delta catalog.
        let oracle = Mediator::new(mediator.catalog().clone(), &opts).unwrap();
        let (full, full_report) = oracle.request(&fx.aig, &args).unwrap();
        assert!(!full_report.incremental.snapshot_hit);
        assert_eq!(
            aig_xml::serialize::to_string(&incr.tree),
            aig_xml::serialize::to_string(&full.tree),
            "{cell} step {step}: incremental document drifted from cold run"
        );

        // Oracle 2: the scoped constraint check inside the path must not
        // have let anything through that the *full* check would catch.
        let violations = fx.aig.constraints.check(&incr.tree);
        assert!(
            violations.is_empty(),
            "{cell} step {step}: full constraint check found {violations:?}"
        );
    }
}

#[test]
fn sequential_static_cells_are_byte_identical() {
    for batching in [false, true] {
        for faults in [false, true] {
            assert_cell(false, Scheduling::Static, batching, faults);
        }
    }
}

#[test]
fn sequential_dynamic_cells_are_byte_identical() {
    for batching in [false, true] {
        for faults in [false, true] {
            assert_cell(false, Scheduling::Dynamic, batching, faults);
        }
    }
}

#[test]
fn parallel_static_cells_are_byte_identical() {
    for batching in [false, true] {
        for faults in [false, true] {
            assert_cell(true, Scheduling::Static, batching, faults);
        }
    }
}

#[test]
fn parallel_dynamic_cells_are_byte_identical() {
    for batching in [false, true] {
        for faults in [false, true] {
            assert_cell(true, Scheduling::Dynamic, batching, faults);
        }
    }
}

#[test]
fn unchanged_catalog_reruns_nothing() {
    let fx = fixture(13);
    let opts = options(false, Scheduling::Static, false, false);
    let mediator = Mediator::new(fx.catalog.clone(), &opts).unwrap();
    let args = [("date", Value::str(&fx.date))];

    let (cold, _) = mediator.request(&fx.aig, &args).unwrap();
    let (warm, report) = mediator.request(&fx.aig, &args).unwrap();
    assert!(report.incremental.snapshot_hit);
    assert_eq!(report.incremental.tasks_rerun, 0);
    assert_eq!(
        report.incremental.tasks_reused,
        report.incremental.tasks_total
    );
    assert_eq!(report.incremental.rows_spliced, 0);
    assert!(report.incremental.dirty_tables.is_empty());
    // Nothing tainted: no constraint needs re-checking, and the document
    // is overwhelmingly copied verbatim (only the correspondence spine —
    // the root and its immediate children — is rebuilt).
    assert_eq!(report.incremental.constraints_scoped, 0);
    assert_eq!(
        report.incremental.nodes_reused + report.incremental.nodes_rebuilt,
        warm.tree.len()
    );
    assert!(report.incremental.nodes_reused > report.incremental.nodes_rebuilt);
    assert_eq!(
        aig_xml::serialize::to_string(&cold.tree),
        aig_xml::serialize::to_string(&warm.tree)
    );
}

#[test]
fn empty_delta_marks_nothing_dirty() {
    let fx = fixture(17);
    let opts = options(false, Scheduling::Static, false, false);
    let mut mediator = Mediator::new(fx.catalog.clone(), &opts).unwrap();
    let args = [("date", Value::str(&fx.date))];
    mediator.request(&fx.aig, &args).unwrap();

    let applied = mediator.apply_delta(&SourceDelta::new()).unwrap();
    assert_eq!(applied.inserted + applied.deleted, 0);
    let (_, report) = mediator.request(&fx.aig, &args).unwrap();
    assert!(report.incremental.snapshot_hit);
    assert_eq!(report.incremental.tasks_rerun, 0);
    assert!(report.incremental.dirty_tables.is_empty());
}

#[test]
fn delta_report_names_the_dirty_tables() {
    let fx = fixture(19);
    let opts = options(false, Scheduling::Static, false, false);
    let mut mediator = Mediator::new(fx.catalog.clone(), &opts).unwrap();
    let args = [("date", Value::str(&fx.date))];
    mediator.request(&fx.aig, &args).unwrap();

    // A cover delta taints only the coverage choice deep in the tree —
    // unlike visitInfo, which feeds the patient star at the root — so the
    // retag must reuse subtrees and the constraint scope must narrow.
    let delta = cover_delta(mediator.catalog(), 2, 1, 5).unwrap();
    mediator.apply_delta(&delta).unwrap();
    let (_, report) = mediator.request(&fx.aig, &args).unwrap();
    assert_eq!(report.incremental.dirty_tables, vec!["DB2.cover"]);
    assert!(report.incremental.rows_spliced > 0);
    assert!(report.incremental.nodes_reused > 0);
    // Both of σ0's constraints mention tags inside the coverage subtree,
    // so the scope keeps them: the interesting narrowing case here is the
    // no-delta request (scoped = 0, see `unchanged_catalog_reruns_nothing`).
    assert!(report.incremental.constraints_scoped > 0);
    assert_eq!(
        report.incremental.constraints_total,
        fx.aig.constraints.len()
    );

    // The dirty set is consumed: the next request reruns nothing.
    let (_, report) = mediator.request(&fx.aig, &args).unwrap();
    assert!(report.incremental.snapshot_hit);
    assert_eq!(report.incremental.tasks_rerun, 0);
}

/// Satellite regression: row deltas keep both caches warm — prepared plans
/// are data-independent and snapshots are exactly what deltas splice into —
/// while schema changes purge them both.
#[test]
fn row_deltas_keep_plans_warm_while_schema_deltas_invalidate() {
    let fx = fixture(23);
    let opts = options(false, Scheduling::Static, false, false);
    let mut mediator = Mediator::new(fx.catalog.clone(), &opts).unwrap();
    let args = [("date", Value::str(&fx.date))];
    mediator.request(&fx.aig, &args).unwrap();
    let baseline = mediator.cache_stats();
    assert!(mediator.snapshot_count() > 0);

    // Row delta: plans stay resident, no invalidation, the next request
    // hits both the plan cache and the snapshot.
    let delta = visit_delta(mediator.catalog(), &fx.date, 1, 1, 31).unwrap();
    mediator.apply_delta(&delta).unwrap();
    let stats = mediator.cache_stats();
    assert_eq!(stats.entries, baseline.entries);
    assert_eq!(stats.invalidations, baseline.invalidations);
    let (_, report) = mediator.request(&fx.aig, &args).unwrap();
    assert!(report.cache.hit, "row delta evicted a prepared plan");
    assert!(
        report.incremental.snapshot_hit,
        "row delta dropped a snapshot"
    );

    // Schema delta: declaring a replica purges plans *and* snapshots.
    mediator
        .with_catalog_mut(|catalog| {
            let db1 = catalog.source_id("DB1").unwrap();
            let db2 = catalog.source_id("DB2").unwrap();
            catalog.declare_replica(db1, db2).unwrap();
        })
        .unwrap();
    let stats = mediator.cache_stats();
    assert_eq!(stats.invalidations, baseline.invalidations + 1);
    assert_eq!(stats.entries, 0);
    assert_eq!(mediator.snapshot_count(), 0);
    let (_, report) = mediator.request(&fx.aig, &args).unwrap();
    assert!(!report.cache.hit, "stale plan served across schema change");
    assert!(!report.incremental.snapshot_hit);
}

/// Fault plans with mid-run outages (`dies_after`) depend on global
/// per-source completion counts, so the service must not serve them from
/// snapshots: every request replays the full graph.
#[test]
fn mid_run_outage_plans_bypass_snapshots() {
    let fx = fixture(29);
    let mut cfg = FaultConfig::default();
    cfg.dies_after.push(("DB2".to_string(), 1));
    let opts = MediatorOptions::builder()
        .unfold_depth(3)
        .incremental(true)
        .faults(Some(cfg))
        .build()
        .unwrap();
    let mut mediator = Mediator::new(fx.catalog.clone(), &opts).unwrap();
    let args = [("date", Value::str(&fx.date))];

    let (first, report) = mediator.request(&fx.aig, &args).unwrap();
    assert!(report.incremental.enabled);
    assert!(!report.incremental.snapshot_hit);
    assert_eq!(mediator.snapshot_count(), 0, "outage run was snapshotted");

    let delta = visit_delta(mediator.catalog(), &fx.date, 1, 0, 37).unwrap();
    mediator.apply_delta(&delta).unwrap();
    let (second, report) = mediator.request(&fx.aig, &args).unwrap();
    assert!(!report.incremental.snapshot_hit);
    assert_eq!(
        report.incremental.tasks_rerun,
        report.incremental.tasks_total
    );
    // The full path still answers correctly across the delta.
    let oracle = Mediator::new(mediator.catalog().clone(), &opts).unwrap();
    let (oracle_run, _) = oracle.request(&fx.aig, &args).unwrap();
    assert_eq!(
        aig_xml::serialize::to_string(&second.tree),
        aig_xml::serialize::to_string(&oracle_run.tree)
    );
    drop(first);
}

/// With the policy off (the default), the ledger stays disabled and no
/// snapshot is retained — the feature is strictly opt-in.
#[test]
fn incremental_off_retains_nothing() {
    let fx = fixture(41);
    let opts = MediatorOptions::builder().unfold_depth(3).build().unwrap();
    let mediator = Mediator::new(fx.catalog.clone(), &opts).unwrap();
    let args = [("date", Value::str(&fx.date))];
    let (_, report) = mediator.request(&fx.aig, &args).unwrap();
    assert!(!report.incremental.enabled);
    assert!(!report.incremental.snapshot_hit);
    assert_eq!(mediator.snapshot_count(), 0);
}
