//! Sequential / parallel executor equivalence — the promise made at the top
//! of `src/parallel.rs`: across datagen seeds and thread interleavings, the
//! parallel executor produces exactly the relations of the sequential one
//! and therefore an identical tagged document.

use aig_core::paper::sigma0;
use aig_core::spec::Aig;
use aig_core::{compile_constraints, decompose_queries};
use aig_datagen::HospitalConfig;
use aig_mediator::cost::estimated_costs;
use aig_mediator::exec::{execute_graph, ExecOptions, ExecResult};
use aig_mediator::graph::{build_graph, GraphOptions, TaskGraph};
use aig_mediator::parallel::execute_graph_parallel;
use aig_mediator::schedule::schedule;
use aig_mediator::tagging::tag_document;
use aig_mediator::unfold::{unfold, CutOff};
use aig_mediator::{run, CostGraph, MediatorOptions, NetworkModel};
use aig_relstore::{Catalog, SourceId, Value};
use std::collections::HashMap;

struct Fixture {
    aig: Aig,
    graph: TaskGraph,
    catalog: Catalog,
    date: String,
}

fn fixture(seed: u64, depth: usize) -> Fixture {
    let aig = sigma0().unwrap();
    let compiled = compile_constraints(&aig).unwrap();
    let (specialized, _) = decompose_queries(&compiled).unwrap();
    let unfolded = unfold(&specialized, depth, CutOff::Truncate).unwrap();
    let data = HospitalConfig::tiny(seed).generate().unwrap();
    let graph = build_graph(&unfolded.aig, &data.catalog, &GraphOptions::default()).unwrap();
    Fixture {
        aig: unfolded.aig,
        graph,
        catalog: data.catalog,
        date: data.dates[0].clone(),
    }
}

/// The pipeline's default interleaving: each source runs its tasks in global
/// topological order.
fn topo_per_source(graph: &TaskGraph) -> HashMap<SourceId, Vec<usize>> {
    let mut per_source: HashMap<SourceId, Vec<usize>> = HashMap::new();
    for &id in &graph.topo {
        per_source
            .entry(graph.tasks[id].source)
            .or_default()
            .push(id);
    }
    per_source
}

fn run_sequential(fx: &Fixture) -> ExecResult {
    execute_graph(
        &fx.aig,
        &fx.catalog,
        &fx.graph,
        &[("date", Value::str(&fx.date))],
        &ExecOptions::default(),
    )
    .unwrap()
}

fn assert_equivalent(fx: &Fixture, seq: &ExecResult, par: &ExecResult) {
    for (key, &producer) in &fx.graph.producer {
        let a = seq.store.get(key).unwrap();
        let b = par.store.get(key).unwrap();
        assert_eq!(a, b, "relation {key:?} differs (task {producer})");
        assert_eq!(a.byte_size(), b.byte_size(), "byte size of {key:?} differs");
    }
    for (id, (s, p)) in seq.measured.iter().zip(&par.measured).enumerate() {
        assert_eq!(s.out_rows, p.out_rows, "out_rows of task {id}");
        assert_eq!(s.out_bytes, p.out_bytes, "out_bytes of task {id}");
        assert_eq!(s.in_rows, p.in_rows, "in_rows of task {id}");
        assert!(p.wait_secs >= 0.0 && p.secs >= 0.0);
    }
    let seq_tree = tag_document(&fx.aig, &fx.graph, &seq.store).unwrap();
    let par_tree = tag_document(&fx.aig, &fx.graph, &par.store).unwrap();
    assert_eq!(seq_tree, par_tree, "tagged documents differ");
}

#[test]
fn parallel_matches_sequential_across_seeds() {
    for seed in [1u64, 7, 42, 2003] {
        let fx = fixture(seed, 3);
        let seq = run_sequential(&fx);
        let plan = topo_per_source(&fx.graph);
        // Repeat: thread timing varies between runs, the relations must not.
        for _ in 0..3 {
            let par = execute_graph_parallel(
                &fx.aig,
                &fx.catalog,
                &fx.graph,
                &[("date", Value::str(&fx.date))],
                &ExecOptions::default(),
                &plan,
            )
            .unwrap();
            assert_equivalent(&fx, &seq, &par);
        }
    }
}

#[test]
fn parallel_matches_sequential_under_scheduled_interleaving() {
    // A second, genuinely different interleaving: Algorithm Schedule over the
    // *uncontracted* cost graph (node ids == task ids) reorders each source's
    // queue by criticality instead of topological position.
    for seed in [1u64, 42] {
        let fx = fixture(seed, 3);
        let seq = run_sequential(&fx);
        let cg = CostGraph::from_task_graph(&fx.graph, &estimated_costs(&fx.graph));
        let plan = schedule(&cg, &NetworkModel::mbps(1.0));
        assert!(plan.consistent_with(&cg));
        let par = execute_graph_parallel(
            &fx.aig,
            &fx.catalog,
            &fx.graph,
            &[("date", Value::str(&fx.date))],
            &ExecOptions::default(),
            &plan.per_source,
        )
        .unwrap();
        assert_equivalent(&fx, &seq, &par);
    }
}

#[test]
fn pipeline_parallel_flag_matches_sequential() {
    let data = HospitalConfig::tiny(5).generate().unwrap();
    let aig = sigma0().unwrap();
    let args = [("date", Value::str(&data.dates[0]))];
    // Deterministic simulated costs (no wall-clock dependence) so the two
    // runs agree on every reported number, not just the document.
    let mut options = MediatorOptions {
        unfold_depth: 3,
        max_depth: 3,
        cutoff: CutOff::Truncate,
        network: NetworkModel::mbps(1.0),
        ..MediatorOptions::default()
    };
    options.graph.eval_scale = 0.0;
    options.graph.cost_model.per_query_overhead_secs = 1.0;

    let sequential = run(&aig, &data.catalog, &args, &options).unwrap();
    options.parallel_exec = true;
    let parallel = run(&aig, &data.catalog, &args, &options).unwrap();

    assert_eq!(sequential.tree, parallel.tree);
    assert_eq!(sequential.tasks, parallel.tasks);
    assert_eq!(sequential.merges, parallel.merges);
    assert_eq!(
        sequential.response_unmerged_secs,
        parallel.response_unmerged_secs
    );
    assert_eq!(
        sequential.response_merged_secs,
        parallel.response_merged_secs
    );
}

/// `ExecPolicy::par_threshold` only moves the sequential/partitioned
/// crossover: pinning it to 1 forces every kernel (hash join build/probe,
/// canonical sort, dedup) down the partitioned path even on a tiny fixture,
/// and the document must stay byte-identical to the default policy.
#[test]
fn pinned_par_threshold_is_byte_identical() {
    let data = HospitalConfig::tiny(5).generate().unwrap();
    let aig = sigma0().unwrap();
    let args = [("date", Value::str(&data.dates[0]))];
    let options = MediatorOptions {
        unfold_depth: 3,
        max_depth: 3,
        cutoff: CutOff::Truncate,
        network: NetworkModel::mbps(1.0),
        ..MediatorOptions::default()
    };
    let baseline = run(&aig, &data.catalog, &args, &options).unwrap();
    for threads in [1, 4] {
        let pinned = MediatorOptions {
            threads,
            par_threshold: 1,
            ..options.clone()
        };
        let forced = run(&aig, &data.catalog, &args, &pinned).unwrap();
        assert_eq!(baseline.tree, forced.tree, "threads={threads}");
    }
}
