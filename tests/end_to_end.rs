//! Cross-crate integration tests: the full σ0 pipeline on generated
//! datasets, comparing every evaluation strategy against every guarantee
//! the paper makes — DTD conformance, constraint satisfaction, and
//! agreement between the conceptual evaluator (§3.2) and the optimized
//! set-oriented mediator (§5).

use aig_integration::core::paper::sigma0;
use aig_integration::core::{compile_constraints, decompose_queries};
use aig_integration::datagen::HospitalConfig;
use aig_integration::prelude::*;

fn mediator_options() -> MediatorOptions {
    MediatorOptions {
        max_depth: 128,
        ..MediatorOptions::default()
    }
}

#[test]
fn all_strategies_agree_on_generated_data() {
    let aig = sigma0().unwrap();
    let compiled = compile_constraints(&aig).unwrap();
    let (specialized, _) = decompose_queries(&compiled).unwrap();
    for seed in [1u64, 2, 3] {
        let data = HospitalConfig::tiny(seed).generate().unwrap();
        for date in data.dates.iter().take(2) {
            let args = [("date", Value::str(date))];
            let plain = evaluate(&aig, &data.catalog, &args).unwrap();
            validate(&plain.tree, &aig.dtd).unwrap();
            assert!(aig.constraints.satisfied(&plain.tree), "seed {seed} {date}");

            // Specialization (constraints compiled + queries decomposed)
            // does not change the document.
            let spec_eval = evaluate(&specialized, &data.catalog, &args).unwrap();
            assert_eq!(plain.tree, spec_eval.tree, "seed {seed} {date}");

            // The mediator produces the same document up to star-child
            // ordering.
            let run = run_mediator(&aig, &data.catalog, &args, &mediator_options()).unwrap();
            validate(&run.tree, &aig.dtd).unwrap();
            assert_eq!(
                canonical(&aig, &run.tree),
                canonical(&aig, &plain.tree),
                "seed {seed} {date}"
            );
        }
    }
}

#[test]
fn per_date_reports_partition_the_visits() {
    // Every patient in the date-d report has at least one visit on d, and
    // dates with no visits give empty reports.
    let aig = sigma0().unwrap();
    let data = HospitalConfig::tiny(7).generate().unwrap();
    let mut patients_seen = 0usize;
    for date in &data.dates {
        let result = evaluate(&aig, &data.catalog, &[("date", Value::str(date))]).unwrap();
        patients_seen += result.tree.element_children(result.tree.root()).count();
    }
    assert!(patients_seen > 0);
    let empty = evaluate(&aig, &data.catalog, &[("date", Value::str("1999-01-01"))]).unwrap();
    assert_eq!(empty.tree.element_children(empty.tree.root()).count(), 0);
}

#[test]
fn deep_recursion_is_followed_to_the_data_depth() {
    // With a chain-shaped procedure hierarchy, the report must contain the
    // full chain under the visited treatment.
    let aig = sigma0().unwrap();
    let mut config = HospitalConfig::tiny(9);
    config.treatments = 12;
    config.procedures = 11; // will be overridden below to an exact chain
    let mut data = config.generate().unwrap();

    // Rebuild the procedure table as a single chain t0 -> t1 -> … -> t11.
    let db4 = data.catalog.source_id("DB4").unwrap();
    let db = data.catalog.source_mut(db4);
    *db = Database::new("DB4");
    let mut treatment = Table::new(TableSchema::strings(
        "treatment",
        &["trId", "tname"],
        &["trId"],
    ));
    let mut procedure = Table::new(TableSchema::strings(
        "procedure",
        &["trId1", "trId2"],
        &["trId1", "trId2"],
    ));
    for i in 0..12 {
        treatment
            .insert(vec![
                Value::str(format!("t{i:04}")),
                Value::str(format!("tname{i:04}")),
            ])
            .unwrap();
        if i > 0 {
            procedure
                .insert(vec![
                    Value::str(format!("t{:04}", i - 1)),
                    Value::str(format!("t{i:04}")),
                ])
                .unwrap();
        }
    }
    db.add_table(treatment).unwrap();
    db.add_table(procedure).unwrap();

    // Find a date where some patient's covered visit hits t0000 (the chain
    // root); if none exists, visits were unlucky — pick the first date with
    // any report content instead.
    for date in &data.dates {
        let args = [("date", Value::str(date))];
        let plain = evaluate(&aig, &data.catalog, &args).unwrap();
        if plain.tree.len() <= 1 {
            continue;
        }
        let run = run_mediator(&aig, &data.catalog, &args, &mediator_options()).unwrap();
        assert_eq!(canonical(&aig, &run.tree), canonical(&aig, &plain.tree));
        // The mediator had to unfold at least as deep as the deepest chain
        // it actually emitted.
        let height = plain.tree.height(plain.tree.root());
        assert!(
            run.depth * 2 + 7 >= height,
            "depth {} vs height {height}",
            run.depth
        );
    }
}

#[test]
fn mediator_rejects_exhausted_recursion_budget() {
    let aig = sigma0().unwrap();
    let data = HospitalConfig::tiny(5).generate().unwrap();
    let options = MediatorOptions {
        unfold_depth: 1,
        max_depth: 1,
        ..MediatorOptions::default()
    };
    // Depth 1 cannot hold the hierarchy: the frontier stays busy and the
    // budget errors out.
    let result = run_mediator(
        &aig,
        &data.catalog,
        &[("date", Value::str(&data.dates[0]))],
        &options,
    );
    assert!(matches!(result, Err(MediatorError::RecursionBudget { .. })));
}

#[test]
fn truncated_and_frontier_runs_agree_when_deep_enough() {
    let aig = sigma0().unwrap();
    let data = HospitalConfig::tiny(13).generate().unwrap();
    let args = [("date", Value::str(&data.dates[1]))];
    let frontier = run_mediator(&aig, &data.catalog, &args, &mediator_options()).unwrap();
    let truncate = run_mediator(
        &aig,
        &data.catalog,
        &args,
        &MediatorOptions {
            unfold_depth: frontier.depth,
            max_depth: frontier.depth,
            cutoff: CutOff::Truncate,
            ..MediatorOptions::default()
        },
    )
    .unwrap();
    assert_eq!(
        canonical(&aig, &frontier.tree),
        canonical(&aig, &truncate.tree)
    );
}
