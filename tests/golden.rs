//! Golden-file tests for the explain renderings and the redacted run report
//! on σ0 with the fixed mini hospital catalog. Regenerate the files under
//! `tests/golden/` with `UPDATE_GOLDEN=1 cargo test -q --test golden`.

use aig_core::paper::{mini_hospital_catalog, sigma0};
use aig_core::{compile_constraints, decompose_queries};
use aig_mediator::cost::{estimated_costs, CostGraph};
use aig_mediator::graph::{build_graph, GraphOptions};
use aig_mediator::schedule::schedule;
use aig_mediator::unfold::{unfold, CutOff};
use aig_mediator::{
    render_graph, render_plan, render_report, run_with_report, MediatorOptions, NetworkModel,
};
use aig_relstore::Value;
use std::fs;
use std::path::PathBuf;

fn check(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "rendering drifted from {name}; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test golden"
    );
}

#[test]
fn graph_and_plan_renderings_are_stable() {
    let aig = sigma0().unwrap();
    let compiled = compile_constraints(&aig).unwrap();
    let (specialized, _) = decompose_queries(&compiled).unwrap();
    let unfolded = unfold(&specialized, 2, CutOff::Truncate).unwrap();
    let catalog = mini_hospital_catalog().unwrap();
    let tasks = build_graph(&unfolded.aig, &catalog, &GraphOptions::default()).unwrap();
    let costs = estimated_costs(&tasks);
    let cg = CostGraph::from_task_graph(&tasks, &costs).contract_passthrough();
    let net = NetworkModel::mbps(1.0);

    check("graph.txt", &render_graph(&cg, &tasks, &catalog));
    check(
        "plan.txt",
        &render_plan(&cg, &schedule(&cg, &net), &net, &catalog),
    );
}

#[test]
fn run_report_rendering_and_json_are_stable() {
    let aig = sigma0().unwrap();
    let catalog = mini_hospital_catalog().unwrap();
    // Wall-clock-independent simulated costs; the remaining measured-time
    // fields are redacted so the report is byte-stable.
    let mut options = MediatorOptions {
        unfold_depth: 2,
        max_depth: 2,
        cutoff: CutOff::Truncate,
        network: NetworkModel::mbps(1.0),
        ..MediatorOptions::default()
    };
    options.graph.eval_scale = 0.0;
    options.graph.cost_model.per_query_overhead_secs = 1.0;
    let (_, report) =
        run_with_report(&aig, &catalog, &[("date", Value::str("d1"))], &options).unwrap();
    let redacted = report.redacted();

    check("report.txt", &render_report(&redacted));
    let mut json = redacted.to_json().to_pretty();
    json.push('\n');
    check("report.json", &json);
}
