//! Randomized property tests (seeded PRNG, fully deterministic) over the
//! core invariants:
//!
//! * XML serializer ↔ parser round-trip;
//! * DTD normalization: documents generated against the normalized DTD,
//!   stripped of synthetic entities, conform to the original general DTD;
//! * compiled constraint guards agree with the whole-tree oracle on
//!   randomly corrupted data;
//! * the conceptual evaluator and the mediator agree on random datasets.

use aig_integration::core::paper::{empty_hospital_catalog, sigma0};
use aig_integration::core::{compile_constraints, AigError};
use aig_integration::datagen::HospitalConfig;
use aig_integration::prelude::*;
use aig_integration::xml::dtd::{ContentModel, Dtd, GeneralDtd, Regex};
use aig_integration::xml::{parse, serialize, validate_general, XmlTree};
use aig_prng::{Rng, SeedableRng, StdRng};

// ---------------------------------------------------------------------------
// Serializer round-trip
// ---------------------------------------------------------------------------

/// A random tree builder: nested tag/text instructions.
#[derive(Debug, Clone)]
enum Piece {
    Text(String),
    Elem(String, Vec<Piece>),
}

fn random_tag(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0usize..7);
    let mut s = String::new();
    s.push((b'a' + rng.gen_range(0u32..26) as u8) as char);
    for _ in 0..len {
        let alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789";
        s.push(alphabet[rng.gen_range(0usize..alphabet.len())] as char);
    }
    s
}

/// Printable ASCII text (includes the characters that need escaping);
/// excludes whitespace-only strings (the parser drops inter-element
/// formatting whitespace).
fn random_text(rng: &mut StdRng) -> String {
    loop {
        let len = rng.gen_range(1usize..13);
        let s: String = (0..len)
            .map(|_| (b' ' + rng.gen_range(0u32..95) as u8) as char)
            .collect();
        if s.chars().any(|c| !c.is_whitespace()) {
            return s;
        }
    }
}

fn random_piece(rng: &mut StdRng, depth: usize) -> Piece {
    let leaf = depth >= 3 || rng.gen_bool(0.4);
    if leaf {
        if rng.gen_bool(0.5) {
            Piece::Text(random_text(rng))
        } else {
            Piece::Elem(random_tag(rng), Vec::new())
        }
    } else {
        let children = (0..rng.gen_range(0usize..4))
            .map(|_| random_piece(rng, depth + 1))
            .collect();
        Piece::Elem(random_tag(rng), children)
    }
}

fn build(tree: &mut XmlTree, parent: aig_integration::xml::NodeId, piece: &Piece) {
    match piece {
        Piece::Text(text) => {
            tree.add_text(parent, text.clone());
        }
        Piece::Elem(tag, children) => {
            let node = tree.add_element(parent, tag.clone());
            for c in children {
                build(tree, node, c);
            }
        }
    }
}

#[test]
fn serialize_parse_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x5EED_A001);
    for case in 0..64 {
        let pieces: Vec<Piece> = (0..rng.gen_range(0usize..5))
            .map(|_| random_piece(&mut rng, 0))
            .collect();
        let mut tree = XmlTree::new("root");
        let root = tree.root();
        for p in &pieces {
            build(&mut tree, root, p);
        }
        // Adjacent text nodes coalesce through parsing, so the invariant is
        // a serialization fixpoint: serialize ∘ parse ∘ serialize = serialize.
        let text = serialize::to_string(&tree);
        let parsed = parse::parse(&text).unwrap();
        assert_eq!(serialize::to_string(&parsed), text, "case {case}");
        // Parsing is then a true inverse on the parsed (normalized) tree.
        assert_eq!(
            &parse::parse(&serialize::to_string(&parsed)).unwrap(),
            &parsed,
            "case {case}"
        );
        // Pretty printing keeps PCDATA intact only when each text node is an
        // only child (otherwise indentation whitespace joins the text — the
        // standard XML pretty-printing caveat); round-trip those cases.
        let pretty_safe = parsed.iter().all(|n| {
            parsed.is_element(n)
                || parsed
                    .parent(n)
                    .map(|p| parsed.children(p).len() == 1)
                    .unwrap_or(true)
        });
        if pretty_safe {
            let pretty = serialize::to_pretty_string(&parsed);
            let reparsed = parse::parse(&pretty).unwrap();
            assert_eq!(serialize::to_string(&reparsed), text, "case {case}");
        }
    }
}

// ---------------------------------------------------------------------------
// DTD normalization
// ---------------------------------------------------------------------------

/// A small random regex over the given element names.
fn random_regex(rng: &mut StdRng, names: &[String], depth: usize) -> Regex {
    let leaf = depth >= 2 || rng.gen_bool(0.4);
    if leaf {
        if rng.gen_bool(0.3) {
            Regex::Epsilon
        } else {
            Regex::Elem(rng.pick(names).clone())
        }
    } else {
        match rng.gen_range(0usize..5) {
            0 => Regex::Seq(
                (0..rng.gen_range(1usize..3))
                    .map(|_| random_regex(rng, names, depth + 1))
                    .collect(),
            ),
            1 => Regex::Choice(
                (0..rng.gen_range(1usize..3))
                    .map(|_| random_regex(rng, names, depth + 1))
                    .collect(),
            ),
            2 => Regex::Star(Box::new(random_regex(rng, names, depth + 1))),
            3 => Regex::Opt(Box::new(random_regex(rng, names, depth + 1))),
            _ => Regex::Plus(Box::new(random_regex(rng, names, depth + 1))),
        }
    }
}

/// Generates a random document conforming to a *restricted* DTD, bounding
/// star repetitions and recursion depth.
/// Returns false when the (possibly recursive) DTD cannot be filled within
/// the depth/size budget — those cases are skipped by the property.
fn generate_doc(
    dtd: &Dtd,
    elem: aig_integration::xml::ElemId,
    tree: &mut XmlTree,
    node: aig_integration::xml::NodeId,
    depth: usize,
    budget: &mut usize,
) -> bool {
    if depth > 24 || *budget == 0 {
        return false;
    }
    *budget -= 1;
    match dtd.production(elem) {
        ContentModel::Pcdata => {
            tree.add_text(node, "x");
            true
        }
        ContentModel::Empty => true,
        ContentModel::Seq(items) => {
            for &c in items.clone().iter() {
                let child = tree.add_element(node, dtd.name(c).to_string());
                if !generate_doc(dtd, c, tree, child, depth + 1, budget) {
                    return false;
                }
            }
            true
        }
        ContentModel::Choice(branches) => {
            let pick = branches[depth % branches.len()];
            let child = tree.add_element(node, dtd.name(pick).to_string());
            generate_doc(dtd, pick, tree, child, depth + 1, budget)
        }
        ContentModel::Star(inner) => {
            let reps = if depth > 8 || *budget < 10 {
                0
            } else {
                1 + depth % 2
            };
            let inner = *inner;
            for _ in 0..reps {
                let child = tree.add_element(node, dtd.name(inner).to_string());
                if !generate_doc(dtd, inner, tree, child, depth + 1, budget) {
                    return false;
                }
            }
            true
        }
    }
}

#[test]
fn normalized_documents_conform_to_the_general_dtd() {
    let names: Vec<String> = vec!["e1".into(), "e2".into(), "e3".into()];
    let mut rng = StdRng::seed_from_u64(0x5EED_A002);
    for case in 0..48 {
        let models: Vec<Regex> = (0..4).map(|_| random_regex(&mut rng, &names, 0)).collect();
        // e0 is the root; e1..e3 are the referenced elements (e3 is PCDATA).
        let decls = vec![
            ("e0".to_string(), models[0].clone()),
            ("e1".to_string(), models[1].clone()),
            ("e2".to_string(), models[2].clone()),
            ("e3".to_string(), Regex::Pcdata),
        ];
        let general = GeneralDtd {
            decls,
            root: "e0".to_string(),
        };
        let normalized = general.normalize().unwrap().dtd;

        // Generate against the normalized DTD, then strip the synthetic
        // entity wrappers and check general conformance (the paper's
        // linear-time back-conversion claim, §2).
        let mut tree = XmlTree::new("e0");
        let root = tree.root();
        let mut budget = 400usize;
        let ok = generate_doc(
            &normalized,
            normalized.root(),
            &mut tree,
            root,
            0,
            &mut budget,
        );
        if !ok {
            continue; // skip cases the bounded generator cannot fill
        }

        assert!(
            aig_integration::xml::validate(&tree, &normalized).is_ok(),
            "case {case}"
        );
        let stripped = tree.strip_elements(Dtd::is_synthetic);
        if let Err(e) = validate_general(&stripped, &general) {
            panic!("case {case}: stripped document fails general DTD: {e}");
        }
    }
}

// ---------------------------------------------------------------------------
// Guards vs oracle on corrupted data
// ---------------------------------------------------------------------------

fn corrupt_billing(seed: u64, drop: bool, duplicate: bool) -> Catalog {
    let data = HospitalConfig::tiny(seed).generate().unwrap();
    let mut catalog = empty_hospital_catalog();
    for db in ["DB1", "DB2", "DB4"] {
        let src = data.catalog.source_id(db).unwrap();
        let dst = catalog.source_id(db).unwrap();
        for table in data.catalog.source(src).table_names() {
            let rows = data
                .catalog
                .source(src)
                .table(table)
                .unwrap()
                .rows()
                .to_vec();
            let t = catalog.source_mut(dst).table_mut(table).unwrap();
            for row in rows {
                t.insert(row).unwrap();
            }
        }
    }
    let dst = catalog.source_id("DB3").unwrap();
    *catalog.source_mut(dst) = Database::new("DB3");
    let mut billing = Table::new(TableSchema::strings("billing", &["trId", "price"], &[]));
    let src = data.catalog.source_id("DB3").unwrap();
    let rows = data
        .catalog
        .source(src)
        .table("billing")
        .unwrap()
        .rows()
        .to_vec();
    for (i, row) in rows.iter().enumerate() {
        if drop && i == 0 {
            continue; // unbilled treatment: inclusion constraint may break
        }
        billing.insert(row.clone()).unwrap();
        if duplicate && i == 1 {
            billing
                .insert(vec![row[0].clone(), Value::str("999")])
                .unwrap(); // duplicate trId: key may break
        }
    }
    catalog.source_mut(dst).add_table(billing).unwrap();
    catalog
}

#[test]
fn compiled_guards_agree_with_the_oracle() {
    let aig = sigma0().unwrap();
    let compiled = compile_constraints(&aig).unwrap();
    let mut rng = StdRng::seed_from_u64(0x5EED_A003);
    for case in 0..24 {
        let seed = rng.gen_range(0u64..500);
        let drop = rng.gen_bool(0.5);
        let duplicate = rng.gen_bool(0.5);
        let date_idx = rng.gen_range(0usize..4);
        let catalog = corrupt_billing(seed, drop, duplicate);
        let data = HospitalConfig::tiny(seed).generate().unwrap();
        let date = &data.dates[date_idx];
        let args = [("date", Value::str(date))];

        let oracle_ok = evaluate(&aig, &catalog, &args)
            .map(|r| aig.constraints.satisfied(&r.tree))
            .unwrap();
        let guarded = evaluate(&compiled, &catalog, &args);
        match guarded {
            Ok(result) => {
                assert!(
                    oracle_ok,
                    "case {case} (seed {seed}, drop {drop}, dup {duplicate}, {date}): \
                     guards passed but the oracle found a violation"
                );
                assert!(aig.constraints.satisfied(&result.tree), "case {case}");
            }
            Err(AigError::ConstraintViolation { .. }) => {
                assert!(
                    !oracle_ok,
                    "case {case} (seed {seed}, drop {drop}, dup {duplicate}, {date}): \
                     guards aborted but the oracle found no violation"
                );
            }
            Err(other) => panic!("case {case}: unexpected error: {other}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Conceptual ≡ mediator on random datasets
// ---------------------------------------------------------------------------

#[test]
fn mediator_agrees_with_conceptual_evaluation() {
    let aig = sigma0().unwrap();
    let mut rng = StdRng::seed_from_u64(0x5EED_A004);
    for case in 0..16 {
        let seed = rng.gen_range(0u64..1000);
        let date_idx = rng.gen_range(0usize..4);
        let data = HospitalConfig::tiny(seed).generate().unwrap();
        let date = &data.dates[date_idx];
        let args = [("date", Value::str(date))];
        let reference = evaluate(&aig, &data.catalog, &args).unwrap();
        let options = MediatorOptions {
            max_depth: 128,
            ..MediatorOptions::default()
        };
        let run = run_mediator(&aig, &data.catalog, &args, &options).unwrap();
        assert_eq!(
            canonical(&aig, &run.tree),
            canonical(&aig, &reference.tree),
            "case {case} (seed {seed}, {date})"
        );
    }
}
